//! Parser for the concrete syntax produced by [`crate::pretty`] — lets
//! benchmarks live in `.zc` text files and drives the `zpre-cli` tool.
//!
//! ```text
//! // program racy-counter (width 8)
//! shared int cnt = 0;
//! mutex m;
//!
//! thread main {
//!   spawn(w1);
//!   spawn(w2);
//!   join(w1);
//!   join(w2);
//!   assert(cnt == 2);
//! }
//!
//! thread w1 { r = cnt; cnt = r + 1; }
//! thread w2 { r = cnt; cnt = r + 1; }
//! ```
//!
//! Threads are referenced by name in `spawn`/`join` (the pretty-printer's
//! `thread_<i>` form is accepted too). The first thread named `main` — or
//! simply the first thread — becomes thread 0.

use crate::ast::{BoolExpr, IntExpr, Program, Stmt, Thread};
use std::fmt;

/// Parse errors with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(u64),
    Punct(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

const PUNCTS: &[&str] = &[
    "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "=", ";", "(", ")", "{", "}", "+", "-", "*",
    "&", "|", "^", "<", ">", "!", "?", ":", ",",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        let bytes = code.as_bytes();
        let mut i = 0;
        'outer: while i < bytes.len() {
            let ch = bytes[i] as char;
            if ch.is_whitespace() {
                i += 1;
                continue;
            }
            if ch.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let text = &code[start..i];
                let value = if let Some(hex) = text.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                }
                .map_err(|_| ParseError {
                    line: line_no,
                    message: format!("bad integer literal {text:?}"),
                })?;
                out.push((Tok::Int(value), line_no));
                continue;
            }
            if ch.is_ascii_alphabetic() || ch == '_' || ch == '%' {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(code[start..i].to_string()), line_no));
                continue;
            }
            for p in PUNCTS {
                if code[i..].starts_with(p) {
                    out.push((Tok::Punct(p), line_no));
                    i += p.len();
                    continue 'outer;
                }
            }
            return Err(ParseError {
                line: line_no,
                message: format!("unexpected character {ch:?}"),
            });
        }
    }
    Ok(out)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        // Errors are raised right after consuming (or failing to consume)
        // a token, so the previous position names the offending line.
        let at = self
            .pos
            .saturating_sub(1)
            .min(self.toks.len().saturating_sub(1));
        self.toks.get(at).map_or(0, |&(_, l)| l)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected {p:?}, found {other:?}"),
            }),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected keyword {kw:?}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Untyped expression, sorted during lowering.
#[derive(Clone, Debug)]
enum UExpr {
    Int(u64),
    Var(String),
    Nondet(String),
    NondetBool(String),
    Un(&'static str, Box<UExpr>),
    Bin(&'static str, Box<UExpr>, Box<UExpr>),
    Shift(&'static str, Box<UExpr>, u32),
    Ite(Box<UExpr>, Box<UExpr>, Box<UExpr>),
}

/// Statement with unresolved spawn/join targets.
#[derive(Clone, Debug)]
enum RawStmt {
    Plain(Stmt),
    If(UExpr, Vec<RawStmt>, Vec<RawStmt>),
    While(UExpr, Vec<RawStmt>),
    Assign(String, UExpr),
    Assert(UExpr),
    Assume(UExpr),
    Spawn(String),
    Join(String),
}

/// Parses a whole program from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut lx = Lexer {
        toks: lex(src)?,
        pos: 0,
    };
    let mut width = 8u32;
    let mut shared: Vec<(String, u64)> = Vec::new();
    let mut mutexes: Vec<String> = Vec::new();
    let mut raw_threads: Vec<(String, Vec<RawStmt>)> = Vec::new();

    while let Some(tok) = lx.peek() {
        match tok {
            Tok::Ident(kw) if kw == "width" => {
                lx.next();
                match lx.next() {
                    Some(Tok::Int(w)) => width = w as u32,
                    other => return Err(lx.err(format!("expected width value, got {other:?}"))),
                }
                lx.eat_punct(";")?;
            }
            Tok::Ident(kw) if kw == "shared" => {
                lx.next();
                lx.eat_keyword("int")?;
                let name = lx.ident()?;
                lx.eat_punct("=")?;
                let init = match lx.next() {
                    Some(Tok::Int(v)) => v,
                    other => return Err(lx.err(format!("expected initializer, got {other:?}"))),
                };
                lx.eat_punct(";")?;
                shared.push((name, init));
            }
            Tok::Ident(kw) if kw == "mutex" => {
                lx.next();
                mutexes.push(lx.ident()?);
                lx.eat_punct(";")?;
            }
            Tok::Ident(kw) if kw == "thread" => {
                lx.next();
                let name = lx.ident()?;
                lx.eat_punct("{")?;
                let body = parse_block_body(&mut lx)?;
                raw_threads.push((name, body));
            }
            other => return Err(lx.err(format!("expected declaration, found {other:?}"))),
        }
    }

    if raw_threads.is_empty() {
        return Err(ParseError {
            line: 0,
            message: "program has no threads".into(),
        });
    }
    // `main` first (if present).
    if let Some(main_at) = raw_threads.iter().position(|(n, _)| n == "main") {
        raw_threads.swap(0, main_at);
    }
    let names: Vec<String> = raw_threads.iter().map(|(n, _)| n.clone()).collect();
    let resolve = |target: &str, line: usize| -> Result<usize, ParseError> {
        if let Some(i) = names.iter().position(|n| n == target) {
            return Ok(i);
        }
        if let Some(num) = target.strip_prefix("thread_") {
            if let Ok(i) = num.parse::<usize>() {
                if i < names.len() {
                    return Ok(i);
                }
            }
        }
        Err(ParseError {
            line,
            message: format!("unknown thread {target:?}"),
        })
    };

    let mut threads = Vec::new();
    for (name, raw) in &raw_threads {
        let body = lower_stmts(raw, &resolve)?;
        threads.push(Thread {
            name: name.clone(),
            body,
        });
    }
    let program = Program {
        name: "parsed".to_string(),
        word_width: width,
        shared,
        mutexes,
        threads,
    };
    Ok(program)
}

fn parse_block(lx: &mut Lexer) -> Result<Vec<RawStmt>, ParseError> {
    lx.eat_punct("{")?;
    parse_block_body(lx)
}

/// Parses statements until the matching `}` (already past the `{`).
fn parse_block_body(lx: &mut Lexer) -> Result<Vec<RawStmt>, ParseError> {
    let mut out = Vec::new();
    loop {
        if lx.try_punct("}") {
            return Ok(out);
        }
        if lx.peek().is_none() {
            return Err(lx.err("unterminated block"));
        }
        out.push(parse_stmt(lx)?);
    }
}

fn parse_stmt(lx: &mut Lexer) -> Result<RawStmt, ParseError> {
    if lx.try_punct(";") {
        return Ok(RawStmt::Plain(Stmt::Skip));
    }
    let Some(Tok::Ident(head)) = lx.peek().cloned() else {
        return Err(lx.err("expected statement"));
    };
    match head.as_str() {
        "if" => {
            lx.next();
            lx.eat_punct("(")?;
            let cond = parse_expr(lx)?;
            lx.eat_punct(")")?;
            let then_b = parse_block(lx)?;
            let else_b = if matches!(lx.peek(), Some(Tok::Ident(s)) if s == "else") {
                lx.next();
                parse_block(lx)?
            } else {
                Vec::new()
            };
            Ok(RawStmt::If(cond, then_b, else_b))
        }
        "while" => {
            lx.next();
            lx.eat_punct("(")?;
            let cond = parse_expr(lx)?;
            lx.eat_punct(")")?;
            let body = parse_block(lx)?;
            Ok(RawStmt::While(cond, body))
        }
        "assert" | "assume" => {
            lx.next();
            lx.eat_punct("(")?;
            let cond = parse_expr(lx)?;
            lx.eat_punct(")")?;
            lx.eat_punct(";")?;
            Ok(if head == "assert" {
                RawStmt::Assert(cond)
            } else {
                RawStmt::Assume(cond)
            })
        }
        "lock" | "unlock" | "spawn" | "join" => {
            lx.next();
            lx.eat_punct("(")?;
            let target = lx.ident()?;
            lx.eat_punct(")")?;
            lx.eat_punct(";")?;
            Ok(match head.as_str() {
                "lock" => RawStmt::Plain(Stmt::Lock(target)),
                "unlock" => RawStmt::Plain(Stmt::Unlock(target)),
                "spawn" => RawStmt::Spawn(target),
                _ => RawStmt::Join(target),
            })
        }
        "fence" | "atomic_begin" | "atomic_end" => {
            lx.next();
            lx.eat_punct("(")?;
            lx.eat_punct(")")?;
            lx.eat_punct(";")?;
            Ok(RawStmt::Plain(match head.as_str() {
                "fence" => Stmt::Fence,
                "atomic_begin" => Stmt::AtomicBegin,
                _ => Stmt::AtomicEnd,
            }))
        }
        _ => {
            // assignment: IDENT = expr ;
            let name = lx.ident()?;
            lx.eat_punct("=")?;
            let value = parse_expr(lx)?;
            lx.eat_punct(";")?;
            Ok(RawStmt::Assign(name, value))
        }
    }
}

// Precedence climbing: ternary > or > and > cmp > bitor > bitxor > bitand >
// shift > add > mul > unary > primary.
fn parse_expr(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let cond = parse_or(lx)?;
    if lx.try_punct("?") {
        let t = parse_expr(lx)?;
        lx.eat_punct(":")?;
        let e = parse_expr(lx)?;
        return Ok(UExpr::Ite(cond.into(), t.into(), e.into()));
    }
    Ok(cond)
}

fn parse_or(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_and(lx)?;
    while lx.try_punct("||") {
        let right = parse_and(lx)?;
        left = UExpr::Bin("||", left.into(), right.into());
    }
    Ok(left)
}

fn parse_and(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_cmp(lx)?;
    while lx.try_punct("&&") {
        let right = parse_cmp(lx)?;
        left = UExpr::Bin("&&", left.into(), right.into());
    }
    Ok(left)
}

fn parse_cmp(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let left = parse_bitor(lx)?;
    for op in ["==", "!=", "<=", ">=", "<", ">"] {
        if lx.try_punct(op) {
            let right = parse_bitor(lx)?;
            return Ok(UExpr::Bin(
                match op {
                    "==" => "==",
                    "!=" => "!=",
                    "<=" => "<=",
                    ">=" => ">=",
                    "<" => "<",
                    _ => ">",
                },
                left.into(),
                right.into(),
            ));
        }
    }
    Ok(left)
}

fn parse_bitor(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_bitxor(lx)?;
    while lx.try_punct("|") {
        let right = parse_bitxor(lx)?;
        left = UExpr::Bin("|", left.into(), right.into());
    }
    Ok(left)
}

fn parse_bitxor(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_bitand(lx)?;
    while lx.try_punct("^") {
        let right = parse_bitand(lx)?;
        left = UExpr::Bin("^", left.into(), right.into());
    }
    Ok(left)
}

fn parse_bitand(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_shift(lx)?;
    while lx.try_punct("&") {
        let right = parse_shift(lx)?;
        left = UExpr::Bin("&", left.into(), right.into());
    }
    Ok(left)
}

fn parse_shift(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_add(lx)?;
    loop {
        let op = if lx.try_punct("<<") {
            "<<"
        } else if lx.try_punct(">>") {
            ">>"
        } else {
            break;
        };
        match lx.next() {
            Some(Tok::Int(by)) => left = UExpr::Shift(op, left.into(), by as u32),
            other => return Err(lx.err(format!("shift amount must be a constant, got {other:?}"))),
        }
    }
    Ok(left)
}

fn parse_add(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_mul(lx)?;
    loop {
        let op = if lx.try_punct("+") {
            "+"
        } else if lx.try_punct("-") {
            "-"
        } else {
            break;
        };
        let right = parse_mul(lx)?;
        left = UExpr::Bin(op, left.into(), right.into());
    }
    Ok(left)
}

fn parse_mul(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    let mut left = parse_unary(lx)?;
    while lx.try_punct("*") {
        let right = parse_unary(lx)?;
        left = UExpr::Bin("*", left.into(), right.into());
    }
    Ok(left)
}

fn parse_unary(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    if lx.try_punct("!") {
        let inner = parse_unary(lx)?;
        return Ok(UExpr::Un("!", inner.into()));
    }
    parse_primary(lx)
}

fn parse_primary(lx: &mut Lexer) -> Result<UExpr, ParseError> {
    match lx.next() {
        Some(Tok::Int(v)) => Ok(UExpr::Int(v)),
        Some(Tok::Punct("(")) => {
            let e = parse_expr(lx)?;
            lx.eat_punct(")")?;
            Ok(e)
        }
        Some(Tok::Ident(name)) => match name.as_str() {
            "true" => Ok(UExpr::Int(1)),
            "false" => Ok(UExpr::Int(0)),
            "nondet" | "nondet_bool" => {
                lx.eat_punct("(")?;
                let id = lx.ident()?;
                lx.eat_punct(")")?;
                Ok(if name == "nondet" {
                    UExpr::Nondet(id)
                } else {
                    UExpr::NondetBool(id)
                })
            }
            _ => Ok(UExpr::Var(name)),
        },
        other => Err(lx.err(format!("expected expression, found {other:?}"))),
    }
}

// ---- lowering: untyped → Int/Bool sorts ----

fn lower_stmts(
    raw: &[RawStmt],
    resolve: &dyn Fn(&str, usize) -> Result<usize, ParseError>,
) -> Result<Vec<Stmt>, ParseError> {
    raw.iter().map(|s| lower_stmt(s, resolve)).collect()
}

fn lower_stmt(
    raw: &RawStmt,
    resolve: &dyn Fn(&str, usize) -> Result<usize, ParseError>,
) -> Result<Stmt, ParseError> {
    Ok(match raw {
        RawStmt::Plain(s) => s.clone(),
        RawStmt::Assign(x, e) => Stmt::Assign(x.clone(), as_int(e)?),
        RawStmt::If(c, t, e) => Stmt::If(
            as_bool(c)?,
            lower_stmts(t, resolve)?,
            lower_stmts(e, resolve)?,
        ),
        RawStmt::While(c, b) => Stmt::While(as_bool(c)?, lower_stmts(b, resolve)?),
        RawStmt::Assert(c) => Stmt::Assert(as_bool(c)?),
        RawStmt::Assume(c) => Stmt::Assume(as_bool(c)?),
        RawStmt::Spawn(t) => Stmt::Spawn(resolve(t, 0)?),
        RawStmt::Join(t) => Stmt::Join(resolve(t, 0)?),
    })
}

fn type_err(msg: &str) -> ParseError {
    ParseError {
        line: 0,
        message: msg.to_string(),
    }
}

fn as_int(e: &UExpr) -> Result<IntExpr, ParseError> {
    Ok(match e {
        UExpr::Int(v) => IntExpr::Const(*v),
        UExpr::Var(x) => IntExpr::Var(x.clone()),
        UExpr::Nondet(n) => IntExpr::Nondet(n.clone()),
        UExpr::NondetBool(_) => {
            return Err(type_err("nondet_bool used where an integer is expected"))
        }
        UExpr::Un(op, _) => return Err(type_err(&format!("operator {op} is not integer-sorted"))),
        UExpr::Shift(op, a, by) => {
            let a = Box::new(as_int(a)?);
            if *op == "<<" {
                IntExpr::Shl(a, *by)
            } else {
                IntExpr::Shr(a, *by)
            }
        }
        UExpr::Bin(op, a, b) => {
            let (x, y) = (Box::new(as_int(a)?), Box::new(as_int(b)?));
            match *op {
                "+" => IntExpr::Add(x, y),
                "-" => IntExpr::Sub(x, y),
                "*" => IntExpr::Mul(x, y),
                "&" => IntExpr::BitAnd(x, y),
                "|" => IntExpr::BitOr(x, y),
                "^" => IntExpr::BitXor(x, y),
                other => {
                    return Err(type_err(&format!(
                        "operator {other} is Boolean-sorted but used as an integer"
                    )))
                }
            }
        }
        UExpr::Ite(c, t, e2) => IntExpr::Ite(
            Box::new(as_bool(c)?),
            Box::new(as_int(t)?),
            Box::new(as_int(e2)?),
        ),
    })
}

fn as_bool(e: &UExpr) -> Result<BoolExpr, ParseError> {
    Ok(match e {
        UExpr::Int(0) => BoolExpr::Const(false),
        UExpr::Int(_) => BoolExpr::Const(true),
        UExpr::NondetBool(n) => BoolExpr::Nondet(n.clone()),
        UExpr::Var(_) | UExpr::Nondet(_) => {
            // C-style truthiness: e != 0.
            BoolExpr::Ne(Box::new(as_int(e)?), Box::new(IntExpr::Const(0)))
        }
        UExpr::Un("!", a) => BoolExpr::Not(Box::new(as_bool(a)?)),
        UExpr::Un(op, _) => return Err(type_err(&format!("unknown unary operator {op}"))),
        UExpr::Bin(op, a, b) => match *op {
            "&&" => BoolExpr::And(Box::new(as_bool(a)?), Box::new(as_bool(b)?)),
            "||" => BoolExpr::Or(Box::new(as_bool(a)?), Box::new(as_bool(b)?)),
            "==" => BoolExpr::Eq(Box::new(as_int(a)?), Box::new(as_int(b)?)),
            "!=" => BoolExpr::Ne(Box::new(as_int(a)?), Box::new(as_int(b)?)),
            "<" => BoolExpr::Lt(Box::new(as_int(a)?), Box::new(as_int(b)?)),
            "<=" => BoolExpr::Le(Box::new(as_int(a)?), Box::new(as_int(b)?)),
            ">" => BoolExpr::Gt(Box::new(as_int(a)?), Box::new(as_int(b)?)),
            ">=" => BoolExpr::Ge(Box::new(as_int(a)?), Box::new(as_int(b)?)),
            other => {
                // integer expression in boolean position: e != 0
                let _ = other;
                BoolExpr::Ne(Box::new(as_int(e)?), Box::new(IntExpr::Const(0)))
            }
        },
        UExpr::Shift(..) => BoolExpr::Ne(Box::new(as_int(e)?), Box::new(IntExpr::Const(0))),
        UExpr::Ite(..) => BoolExpr::Ne(Box::new(as_int(e)?), Box::new(IntExpr::Const(0))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    #[test]
    fn parses_the_racy_counter() {
        let src = r#"
            // racy counter
            shared int cnt = 0;
            thread main {
              spawn(w1); spawn(w2); join(w1); join(w2);
              assert(cnt == 2);
            }
            thread w1 { r = cnt; cnt = r + 1; }
            thread w2 { r = cnt; cnt = r + 1; }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.threads.len(), 3);
        assert_eq!(p.threads[0].name, "main");
        assert_eq!(p.shared, vec![("cnt".to_string(), 0)]);
        assert!(matches!(p.threads[0].body[0], Stmt::Spawn(1)));
        assert!(matches!(p.threads[0].body[3], Stmt::Join(2)));
    }

    #[test]
    fn width_and_mutex_declarations() {
        let src = r#"
            width 16;
            shared int x = 3;
            mutex m;
            thread main { lock(m); x = x * 2; unlock(m); assert(x == 6); }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.word_width, 16);
        assert_eq!(p.mutexes, vec!["m".to_string()]);
        assert!(matches!(p.threads[0].body[0], Stmt::Lock(_)));
    }

    #[test]
    fn control_flow_and_operators() {
        let src = r#"
            shared int x = 0;
            thread main {
              while (x < 3) { x = x + 1; }
              if (x == 3) { x = x << 1; } else { x = 0; }
              assume(x >= 0);
              assert((x & 7) != 5 && !(x > 100) || x == 6);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert!(p.has_loops());
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn nondet_and_ternary() {
        let src = r#"
            width 4;
            shared int x = 0;
            thread main {
              x = nondet(k);
              x = x < 8 ? x : 0;
              assert(x != 9);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.validate(), Ok(()));
        let body = &p.threads[0].body;
        assert!(matches!(&body[0], Stmt::Assign(_, IntExpr::Nondet(n)) if n == "k"));
        assert!(matches!(&body[1], Stmt::Assign(_, IntExpr::Ite(..))));
    }

    #[test]
    fn fences_and_atomics() {
        let src = r#"
            shared int x = 0;
            thread main { spawn(t); join(t); }
            thread t { atomic_begin(); x = 1; fence(); atomic_end(); }
        "#;
        let p = parse_program(src).unwrap();
        let body = &p.threads[1].body;
        assert!(matches!(body[0], Stmt::AtomicBegin));
        assert!(matches!(body[2], Stmt::Fence));
        assert!(matches!(body[3], Stmt::AtomicEnd));
    }

    #[test]
    fn pretty_roundtrip() {
        // A builder program survives pretty → parse → pretty.
        let p = ProgramBuilder::new("rt")
            .shared("x", 0)
            .shared("y", 2)
            .mutex("m")
            .thread(
                "t1",
                vec![
                    lock("m"),
                    if_(
                        lt(v("x"), c(3)),
                        vec![assign("x", add(v("x"), c(1)))],
                        vec![assign("y", c(0))],
                    ),
                    unlock("m"),
                ],
            )
            .main(vec![spawn(1), join(1), assert_(ne(v("x"), c(9)))])
            .build();
        let text = crate::pretty::pretty_program(&p);
        let q = parse_program(&text).unwrap();
        assert_eq!(q.validate(), Ok(()));
        assert_eq!(q.shared, p.shared);
        assert_eq!(q.mutexes, p.mutexes);
        assert_eq!(q.threads.len(), p.threads.len());
        // Second roundtrip is a fixpoint.
        let text2 = crate::pretty::pretty_program(&q);
        let r = parse_program(&text2).unwrap();
        assert_eq!(r.threads, q.threads);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "shared int x = 0;\nthread main {\n  x = ;\n}\n";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unknown_thread_reference_is_rejected() {
        let src = "shared int x = 0;\nthread main { spawn(ghost); }\n";
        assert!(parse_program(src).is_err());
    }
}
