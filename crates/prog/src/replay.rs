//! Schedule-driven witness replay on a buffered store machine.
//!
//! The certification layer turns an `Unsafe` model into a *schedule* — the
//! model's global events (writes, reads, lock operations, fences, spawns,
//! joins) in clock order, each annotated with the value the model assigned
//! — plus the model's nondeterministic input values. [`replay`] then drives
//! the flat program through that schedule as an independent oracle: local
//! computation is executed concretely, every scheduled event must match the
//! next global instruction of its thread, and every observed value must
//! equal the model's. The replay succeeds only if some assertion concretely
//! evaluates to false; any divergence is a typed [`ReplayError`], never a
//! panic.
//!
//! Memory-model fidelity: under SC every store commits at its program
//! point, so crossing an unscheduled store is a mismatch. Under TSO the
//! machine keeps one FIFO store buffer per thread — a store crossed while
//! advancing is buffered, commits only when its `Write` event arrives, and
//! must then be the buffer head (TSO preserves W→W order). Under PSO only
//! the per-variable order is enforced: a buffered store may commit when it
//! is the oldest buffered store *to its variable*. Loads forward from the
//! newest same-variable buffered store, as real store buffers do.
//! Fence-like events (lock/unlock/fence/atomic boundaries/spawn/join)
//! preserve order with everything in all three models, so the replaying
//! thread's buffer must be fully drained when one occurs. Atomic-section
//! boundaries are replayed as ordering events only — the encoder serializes
//! conflicting accesses around them, and replay checks exactly what the
//! model claims, not a stronger global-exclusivity property.
//!
//! Initializer writes are *not* part of the schedule: the flat program has
//! no initializer instructions (`shared_init` supplies initial values), and
//! every scheduled event is ordered after the initializers by construction
//! (fence-like spawn edges for non-main threads, program order and
//! reads-from for main).

use crate::flat::{FlatProgram, Instr};
use crate::interp::{eval_bool, eval_int};
use crate::wmm::MemoryModel;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One global event of the schedule, as the model ordered it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// A store to shared variable `var` committing value `value`.
    Write {
        /// Shared-variable index (into `FlatProgram::shared_names`).
        var: usize,
        /// The committed value in the model.
        value: u64,
    },
    /// A load of shared variable `var` observing `value`.
    Read {
        /// Shared-variable index.
        var: usize,
        /// The observed value in the model.
        value: u64,
    },
    /// Acquiring mutex `mutex`.
    Lock {
        /// Mutex index.
        mutex: usize,
    },
    /// Releasing mutex `mutex`.
    Unlock {
        /// Mutex index.
        mutex: usize,
    },
    /// A memory fence.
    Fence,
    /// Entering an atomic section.
    AtomicBegin,
    /// Leaving an atomic section.
    AtomicEnd,
    /// Spawning thread `child`.
    Spawn {
        /// Index of the spawned thread.
        child: usize,
    },
    /// Joining thread `child` (runs the child's trailing local code).
    Join {
        /// Index of the joined thread.
        child: usize,
    },
}

/// One step of the schedule: which thread performs which global event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleStep {
    /// The acting thread.
    pub thread: usize,
    /// The event it performs.
    pub op: ReplayOp,
}

/// A concretely confirmed assertion violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayViolation {
    /// Thread whose assertion fired.
    pub thread: usize,
    /// Program counter of the failing `Assert` instruction.
    pub pc: usize,
}

/// Why a replay did not confirm the witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The schedule diverged from the program's concrete behaviour.
    Mismatch {
        /// Index of the offending schedule step (`None` for the final
        /// sweep after the schedule was exhausted).
        step: Option<usize>,
        /// The thread being replayed.
        thread: usize,
        /// Human-readable divergence description.
        detail: String,
    },
    /// The replay ran to completion but no assertion fired.
    NoViolation,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Mismatch {
                step,
                thread,
                detail,
            } => match step {
                Some(i) => write!(f, "schedule step {i} (thread {thread}): {detail}"),
                None => write!(f, "final sweep (thread {thread}): {detail}"),
            },
            ReplayError::NoViolation => {
                write!(f, "replay completed but no assertion violation fired")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// What [`Replayer::advance`] stopped on.
enum Stop {
    /// The thread's pc now points at a global instruction.
    Global,
    /// The thread ran off the end of its code.
    End,
    /// An assertion concretely failed at this pc.
    Violation(usize),
}

struct Replayer<'a> {
    fp: &'a FlatProgram,
    mm: MemoryModel,
    pcs: Vec<usize>,
    locals: Vec<BTreeMap<String, u64>>,
    shared: Vec<u64>,
    mutex: Vec<Option<usize>>,
    started: Vec<bool>,
    /// Per-thread store buffer, oldest first (empty under SC).
    buffers: Vec<VecDeque<(usize, u64)>>,
    nondet_ints: &'a HashMap<String, u64>,
    nondet_bools: &'a HashMap<String, bool>,
    /// Backstop against malformed jump targets: total instructions the
    /// replay may execute before giving up.
    fuel: usize,
    /// Current schedule-step index, for error reporting.
    step: Option<usize>,
}

impl<'a> Replayer<'a> {
    fn mismatch<T>(&self, thread: usize, detail: impl Into<String>) -> Result<T, ReplayError> {
        Err(ReplayError::Mismatch {
            step: self.step,
            thread,
            detail: detail.into(),
        })
    }

    /// Executes local instructions of thread `t` until a global instruction,
    /// the end of the code, or a concrete assertion violation.
    ///
    /// When `stop_at_store` is `Some(v)`, a `StoreShared` to `v` is treated
    /// as the stopping global instruction; any *other* store crossed on the
    /// way is buffered under TSO/PSO and a mismatch under SC (where every
    /// store is a scheduled event). With `None`, all stores are crossed
    /// (buffered) under TSO/PSO and mismatches under SC.
    fn advance(&mut self, t: usize, stop_at_store: Option<usize>) -> Result<Stop, ReplayError> {
        let w = self.fp.word_width;
        let code = &self.fp.threads[t].code;
        loop {
            if self.fuel == 0 {
                return self.mismatch(t, "replay fuel exhausted (malformed control flow)");
            }
            self.fuel -= 1;
            let pc = self.pcs[t];
            if pc >= code.len() {
                return Ok(Stop::End);
            }
            match &code[pc] {
                Instr::AssignLocal { dst, val } => {
                    let v = eval_int(val, &self.locals[t], w);
                    self.locals[t].insert(dst.clone(), v);
                    self.pcs[t] += 1;
                }
                Instr::HavocInt { dst } => {
                    let raw = self.nondet_ints.get(dst).copied().unwrap_or(0);
                    let v = if w == 64 { raw } else { raw & ((1 << w) - 1) };
                    self.locals[t].insert(dst.clone(), v);
                    self.pcs[t] += 1;
                }
                Instr::HavocBool { dst } => {
                    let v = self.nondet_bools.get(dst).copied().unwrap_or(false);
                    self.locals[t].insert(dst.clone(), v as u64);
                    self.pcs[t] += 1;
                }
                Instr::Jmp { target } => {
                    self.pcs[t] = *target;
                }
                Instr::JmpIfFalse { cond, target } => {
                    if eval_bool(cond, &self.locals[t], w) {
                        self.pcs[t] += 1;
                    } else {
                        self.pcs[t] = *target;
                    }
                }
                Instr::Assert(cond) => {
                    if eval_bool(cond, &self.locals[t], w) {
                        self.pcs[t] += 1;
                    } else {
                        return Ok(Stop::Violation(pc));
                    }
                }
                Instr::Assume(cond) => {
                    if eval_bool(cond, &self.locals[t], w) {
                        self.pcs[t] += 1;
                    } else {
                        return self
                            .mismatch(t, "assumption evaluated false along the replayed path");
                    }
                }
                Instr::StoreShared { var, val } => {
                    if stop_at_store == Some(*var) {
                        return Ok(Stop::Global);
                    }
                    if self.mm == MemoryModel::Sc {
                        return self.mismatch(
                            t,
                            format!(
                                "unscheduled store to {} under SC",
                                self.fp.shared_names[*var]
                            ),
                        );
                    }
                    let v = eval_int(val, &self.locals[t], w);
                    self.buffers[t].push_back((*var, v));
                    self.pcs[t] += 1;
                }
                // Every other instruction is a scheduled global event.
                _ => return Ok(Stop::Global),
            }
        }
    }

    /// The value a load of `var` by thread `t` observes: the newest buffered
    /// same-variable store (forwarding), else shared memory.
    fn load_value(&self, t: usize, var: usize) -> u64 {
        self.buffers[t]
            .iter()
            .rev()
            .find(|&&(v, _)| v == var)
            .map(|&(_, val)| val)
            .unwrap_or(self.shared[var])
    }

    fn require_drained(&self, t: usize, what: &str) -> Result<(), ReplayError> {
        if self.buffers[t].is_empty() {
            Ok(())
        } else {
            self.mismatch(t, format!("{what} ordered before earlier stores committed"))
        }
    }

    fn do_write(&mut self, t: usize, var: usize, value: u64) -> Result<Option<Stop>, ReplayError> {
        // A previously buffered store to `var` commits now.
        if let Some(pos) = self.buffers[t].iter().position(|&(v, _)| v == var) {
            if self.mm == MemoryModel::Tso && pos != 0 {
                return self.mismatch(t, "store commit out of FIFO order under TSO");
            }
            let (_, buffered) = self.buffers[t].remove(pos).expect("position checked");
            if buffered != value {
                return self.mismatch(
                    t,
                    format!(
                        "store to {} computes {buffered} but the model committed {value}",
                        self.fp.shared_names[var]
                    ),
                );
            }
            self.shared[var] = value;
            return Ok(None);
        }
        // Otherwise advance to the store instruction and commit in place.
        match self.advance(t, Some(var))? {
            Stop::Violation(pc) => return Ok(Some(Stop::Violation(pc))),
            Stop::End => {
                return self.mismatch(
                    t,
                    format!(
                        "scheduled store to {} but the thread has finished",
                        self.fp.shared_names[var]
                    ),
                )
            }
            Stop::Global => {}
        }
        let pc = self.pcs[t];
        let Instr::StoreShared { var: v, val } = &self.fp.threads[t].code[pc] else {
            return self.mismatch(
                t,
                format!(
                    "scheduled store to {} but the next global instruction differs",
                    self.fp.shared_names[var]
                ),
            );
        };
        debug_assert_eq!(*v, var);
        // Committing in place means every earlier buffered store would be
        // overtaken: W→W order forbids that under TSO (FIFO) and the
        // same-variable case was handled above for PSO.
        if self.mm == MemoryModel::Tso && !self.buffers[t].is_empty() {
            return self.mismatch(t, "store commit overtakes buffered stores under TSO");
        }
        let computed = eval_int(val, &self.locals[t], self.fp.word_width);
        if computed != value {
            return self.mismatch(
                t,
                format!(
                    "store to {} computes {computed} but the model committed {value}",
                    self.fp.shared_names[var]
                ),
            );
        }
        self.shared[var] = value;
        self.pcs[t] += 1;
        Ok(None)
    }

    /// Handles one scheduled event. `Ok(Some(violation))` short-circuits the
    /// whole replay with success.
    fn do_step(&mut self, t: usize, op: &ReplayOp) -> Result<Option<ReplayViolation>, ReplayError> {
        if !self.started[t] {
            return self.mismatch(t, "event scheduled on a thread that was never spawned");
        }
        if let ReplayOp::Write { var, value } = *op {
            return match self.do_write(t, var, value)? {
                Some(Stop::Violation(pc)) => Ok(Some(ReplayViolation { thread: t, pc })),
                _ => Ok(None),
            };
        }
        // Every remaining event sits at a dedicated global instruction.
        match self.advance(t, None)? {
            Stop::Violation(pc) => return Ok(Some(ReplayViolation { thread: t, pc })),
            Stop::End => {
                return self.mismatch(t, "event scheduled after the thread finished");
            }
            Stop::Global => {}
        }
        let pc = self.pcs[t];
        let instr = &self.fp.threads[t].code[pc];
        match (op, instr) {
            (ReplayOp::Read { var, value }, Instr::LoadShared { dst, var: v }) => {
                if v != var {
                    return self.mismatch(
                        t,
                        format!(
                            "scheduled read of {} but the program loads {}",
                            self.fp.shared_names[*var], self.fp.shared_names[*v]
                        ),
                    );
                }
                let observed = self.load_value(t, *var);
                if observed != *value {
                    return self.mismatch(
                        t,
                        format!(
                            "read of {} observes {observed} but the model claims {value}",
                            self.fp.shared_names[*var]
                        ),
                    );
                }
                let dst = dst.clone();
                self.locals[t].insert(dst, *value);
            }
            (ReplayOp::Lock { mutex }, Instr::Lock(m)) if m == mutex => {
                self.require_drained(t, "lock")?;
                if let Some(holder) = self.mutex[*mutex] {
                    return self.mismatch(
                        t,
                        format!("lock of mutex {mutex} while thread {holder} holds it"),
                    );
                }
                self.mutex[*mutex] = Some(t);
            }
            (ReplayOp::Unlock { mutex }, Instr::Unlock(m)) if m == mutex => {
                self.require_drained(t, "unlock")?;
                if self.mutex[*mutex] != Some(t) {
                    return self.mismatch(
                        t,
                        format!("unlock of mutex {mutex} not held by this thread"),
                    );
                }
                self.mutex[*mutex] = None;
            }
            (ReplayOp::Fence, Instr::Fence) => {
                self.require_drained(t, "fence")?;
            }
            (ReplayOp::AtomicBegin, Instr::AtomicBegin) => {
                self.require_drained(t, "atomic section entry")?;
            }
            (ReplayOp::AtomicEnd, Instr::AtomicEnd) => {
                self.require_drained(t, "atomic section exit")?;
            }
            (ReplayOp::Spawn { child }, Instr::Spawn(i)) if i == child => {
                self.require_drained(t, "spawn")?;
                if *child >= self.started.len() {
                    return self.mismatch(t, format!("spawn of unknown thread {child}"));
                }
                self.started[*child] = true;
            }
            (ReplayOp::Join { child }, Instr::Join(i)) if i == child => {
                self.require_drained(t, "join")?;
                let c = *child;
                if c >= self.started.len() || !self.started[c] {
                    return self.mismatch(t, format!("join of never-spawned thread {c}"));
                }
                // The child's trailing local code runs before the join
                // observes it as finished.
                match self.advance(c, None)? {
                    Stop::Violation(cpc) => {
                        return Ok(Some(ReplayViolation { thread: c, pc: cpc }))
                    }
                    Stop::Global => {
                        return self
                            .mismatch(c, "joined thread still has unexecuted global operations");
                    }
                    Stop::End => {}
                }
                self.require_drained(c, "join of a thread whose")?;
            }
            _ => {
                return self.mismatch(
                    t,
                    format!("scheduled {op:?} but the next global instruction is {instr:?}"),
                );
            }
        }
        self.pcs[t] += 1;
        Ok(None)
    }
}

/// Replays `schedule` against `fp` under `mm` with the model's
/// nondeterministic inputs (`nondet_ints` keyed by the havoc destination
/// local, e.g. `%nd_n`; `nondet_bools` by `%nb_n`).
///
/// Returns the concretely confirmed violation, or a [`ReplayError`]
/// explaining the divergence. Never panics on malformed schedules.
pub fn replay(
    fp: &FlatProgram,
    mm: MemoryModel,
    schedule: &[ScheduleStep],
    nondet_ints: &HashMap<String, u64>,
    nondet_bools: &HashMap<String, bool>,
) -> Result<ReplayViolation, ReplayError> {
    let nt = fp.threads.len();
    let total_code: usize = fp.threads.iter().map(|t| t.code.len()).sum();
    let mut r = Replayer {
        fp,
        mm,
        pcs: vec![0; nt],
        locals: vec![BTreeMap::new(); nt],
        shared: fp.shared_init.clone(),
        mutex: vec![None; fp.num_mutexes],
        started: {
            let mut s = vec![false; nt];
            if nt > 0 {
                s[0] = true;
            }
            s
        },
        buffers: vec![VecDeque::new(); nt],
        nondet_ints,
        nondet_bools,
        fuel: total_code * 4 + schedule.len() * 4 + 1024,
        step: None,
    };
    for (i, s) in schedule.iter().enumerate() {
        r.step = Some(i);
        if s.thread >= nt {
            return r.mismatch(s.thread, "schedule names a nonexistent thread");
        }
        if let Some(v) = r.do_step(s.thread, &s.op)? {
            return Ok(v);
        }
    }
    // Final sweep: trailing local code may still fire an assertion; any
    // leftover global instruction or uncommitted store is a divergence.
    r.step = None;
    for t in 0..nt {
        if !r.started[t] {
            continue;
        }
        match r.advance(t, None)? {
            Stop::Violation(pc) => return Ok(ReplayViolation { thread: t, pc }),
            Stop::Global => {
                return r.mismatch(t, "unconsumed global operation after the schedule ended");
            }
            Stop::End => {}
        }
        r.require_drained(t, "schedule end")?;
    }
    Err(ReplayError::NoViolation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::flat::flatten;
    use crate::unroll::unroll_program;

    fn flat(p: &crate::ast::Program) -> FlatProgram {
        flatten(&unroll_program(p, 4))
    }

    fn no_nondet() -> (HashMap<String, u64>, HashMap<String, bool>) {
        (HashMap::new(), HashMap::new())
    }

    #[test]
    fn sequential_violation_replays() {
        // x := 5; assert x == 6 — the violation fires in the final sweep.
        let p = ProgramBuilder::new("seq")
            .shared("x", 0)
            .main(vec![assign("x", c(5)), assert_(eq(v("x"), c(6)))])
            .build();
        let fp = flat(&p);
        let sched = vec![
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Write { var: 0, value: 5 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 0, value: 5 },
            },
        ];
        let (ni, nb) = no_nondet();
        let r = replay(&fp, MemoryModel::Sc, &sched, &ni, &nb);
        assert!(matches!(r, Ok(ReplayViolation { thread: 0, .. })), "{r:?}");
    }

    #[test]
    fn wrong_read_value_is_a_mismatch() {
        let p = ProgramBuilder::new("seq")
            .shared("x", 0)
            .main(vec![assign("x", c(5)), assert_(eq(v("x"), c(6)))])
            .build();
        let fp = flat(&p);
        let sched = vec![
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Write { var: 0, value: 5 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 0, value: 7 }, // forged
            },
        ];
        let (ni, nb) = no_nondet();
        assert!(matches!(
            replay(&fp, MemoryModel::Sc, &sched, &ni, &nb),
            Err(ReplayError::Mismatch { step: Some(1), .. })
        ));
    }

    #[test]
    fn passing_program_reports_no_violation() {
        let p = ProgramBuilder::new("seq")
            .shared("x", 0)
            .main(vec![assign("x", c(5)), assert_(eq(v("x"), c(5)))])
            .build();
        let fp = flat(&p);
        let sched = vec![
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Write { var: 0, value: 5 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 0, value: 5 },
            },
        ];
        let (ni, nb) = no_nondet();
        assert_eq!(
            replay(&fp, MemoryModel::Sc, &sched, &ni, &nb),
            Err(ReplayError::NoViolation)
        );
    }

    #[test]
    fn tso_reorders_store_past_load_but_sc_rejects() {
        // x := 1; assert y == 1 — the model delays the store commit past
        // the load (legal under TSO, a mismatch under SC).
        let p = ProgramBuilder::new("sb1")
            .shared("x", 0)
            .shared("y", 0)
            .main(vec![assign("x", c(1)), assert_(eq(v("y"), c(1)))])
            .build();
        let fp = flat(&p);
        let sched = vec![
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 1, value: 0 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Write { var: 0, value: 1 },
            },
        ];
        let (ni, nb) = no_nondet();
        // Under TSO the buffered store commits later; y == 0 fails the
        // assertion in the final sweep — a confirmed violation.
        assert!(replay(&fp, MemoryModel::Tso, &sched, &ni, &nb).is_ok());
        // Under SC the store may not be crossed.
        assert!(matches!(
            replay(&fp, MemoryModel::Sc, &sched, &ni, &nb),
            Err(ReplayError::Mismatch { step: Some(0), .. })
        ));
    }

    #[test]
    fn store_forwarding_observes_buffered_value() {
        // x := 1; assert x == 1 — the load forwards from the store buffer
        // even though the store commits after the load in clock order.
        let p = ProgramBuilder::new("fwd")
            .shared("x", 0)
            .main(vec![assign("x", c(1)), assert_(eq(v("x"), c(1)))])
            .build();
        let fp = flat(&p);
        let sched = vec![
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 0, value: 1 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Write { var: 0, value: 1 },
            },
        ];
        let (ni, nb) = no_nondet();
        // Forwarding makes the read see 1; no assertion fails → NoViolation.
        assert_eq!(
            replay(&fp, MemoryModel::Tso, &sched, &ni, &nb),
            Err(ReplayError::NoViolation)
        );
    }

    #[test]
    fn racy_counter_interleaving_replays() {
        // Classic lost update: both workers read 0, both write 1.
        let inc = vec![assign("r", v("c")), assign("c", add(v("r"), c(1)))];
        let p = ProgramBuilder::new("race")
            .shared("c", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("c"), c(2))),
            ])
            .build();
        let fp = flat(&p);
        let s = |thread, op| ScheduleStep { thread, op };
        let sched = vec![
            s(0, ReplayOp::Spawn { child: 1 }),
            s(0, ReplayOp::Spawn { child: 2 }),
            s(1, ReplayOp::Read { var: 0, value: 0 }),
            s(2, ReplayOp::Read { var: 0, value: 0 }),
            s(1, ReplayOp::Write { var: 0, value: 1 }),
            s(2, ReplayOp::Write { var: 0, value: 1 }),
            s(0, ReplayOp::Join { child: 1 }),
            s(0, ReplayOp::Join { child: 2 }),
            s(0, ReplayOp::Read { var: 0, value: 1 }),
        ];
        let (ni, nb) = no_nondet();
        let r = replay(&fp, MemoryModel::Sc, &sched, &ni, &nb);
        assert!(matches!(r, Ok(ReplayViolation { thread: 0, .. })), "{r:?}");
    }

    #[test]
    fn unspawned_thread_event_is_a_mismatch() {
        let p = ProgramBuilder::new("race")
            .shared("c", 0)
            .thread("w1", vec![assign("c", c(1))])
            .main(vec![spawn(1), join(1), assert_(eq(v("c"), c(0)))])
            .build();
        let fp = flat(&p);
        let sched = vec![ScheduleStep {
            thread: 1,
            op: ReplayOp::Write { var: 0, value: 1 },
        }];
        let (ni, nb) = no_nondet();
        assert!(matches!(
            replay(&fp, MemoryModel::Sc, &sched, &ni, &nb),
            Err(ReplayError::Mismatch { step: Some(0), .. })
        ));
    }

    #[test]
    fn nondet_values_drive_the_replay() {
        let p = ProgramBuilder::new("nd")
            .width(3)
            .shared("x", 0)
            .main(vec![
                assign("x", nondet("n")),
                assume(lt(v("x"), c(5))),
                assert_(ne(v("x"), c(3))),
            ])
            .build();
        let fp = flat(&p);
        // One load for the assume, one for the assert.
        let sched = vec![
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Write { var: 0, value: 3 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 0, value: 3 },
            },
            ScheduleStep {
                thread: 0,
                op: ReplayOp::Read { var: 0, value: 3 },
            },
        ];
        let mut ni = HashMap::new();
        ni.insert("%nd_n".to_string(), 3u64);
        let nb = HashMap::new();
        assert!(replay(&fp, MemoryModel::Sc, &sched, &ni, &nb).is_ok());
        // A different input value makes the store mismatch.
        ni.insert("%nd_n".to_string(), 2u64);
        assert!(matches!(
            replay(&fp, MemoryModel::Sc, &sched, &ni, &nb),
            Err(ReplayError::Mismatch { .. })
        ));
    }
}
