//! Bounded loop unrolling — the BMC front-end step.
//!
//! Every `while (c) body` is replaced by `k` nested `if (c) { body … }`
//! with an innermost *unwinding assumption* `assume(!c)`, exactly the
//! transformation the paper describes in §5 ("a program can be converted to
//! a loop-free one by replacing every loop with a nested if-statement").
//! With the unwinding assumption, an `unsat` verdict means *correct up to
//! bound k*; a `sat` verdict is a genuine counterexample.

use crate::ast::{BoolExpr, Program, Stmt};

/// Unrolls every loop in `prog` to depth `bound`, returning a loop-free
/// program. `bound = 0` replaces loops by their unwinding assumption alone.
pub fn unroll_program(prog: &Program, bound: u32) -> Program {
    let mut out = prog.clone();
    for t in &mut out.threads {
        t.body = unroll_stmts(&t.body, bound);
    }
    out.name = format!("{}@k{}", prog.name, bound);
    debug_assert!(!out.has_loops());
    out
}

fn unroll_stmts(stmts: &[Stmt], bound: u32) -> Vec<Stmt> {
    stmts.iter().map(|s| unroll_stmt(s, bound)).collect()
}

fn unroll_stmt(stmt: &Stmt, bound: u32) -> Stmt {
    match stmt {
        Stmt::While(c, body) => unroll_loop(c, body, bound),
        Stmt::If(c, t, e) => Stmt::If(c.clone(), unroll_stmts(t, bound), unroll_stmts(e, bound)),
        other => other.clone(),
    }
}

fn unroll_loop(cond: &BoolExpr, body: &[Stmt], k: u32) -> Stmt {
    if k == 0 {
        // Unwinding assumption: executions needing more iterations are
        // excluded from this bounded model.
        return Stmt::Assume(BoolExpr::Not(Box::new(cond.clone())));
    }
    let mut once = unroll_stmts(body, k); // nested loops unroll to the same bound
                                          // Each unrolled copy must draw fresh nondeterministic inputs: suffix the
                                          // nondet names with the remaining iteration count.
    for s in &mut once {
        rename_nondets_stmt(s, k);
    }
    once.push(unroll_loop(cond, body, k - 1));
    Stmt::If(
        cond.clone(),
        once,
        vec![Stmt::Assume(BoolExpr::Not(Box::new(cond.clone())))],
    )
}

fn rename_nondets_stmt(s: &mut Stmt, k: u32) {
    match s {
        Stmt::Assign(_, e) => rename_nondets_int(e, k),
        Stmt::If(c, t, e) => {
            rename_nondets_bool(c, k);
            for x in t.iter_mut().chain(e.iter_mut()) {
                rename_nondets_stmt(x, k);
            }
        }
        Stmt::While(c, b) => {
            rename_nondets_bool(c, k);
            for x in b {
                rename_nondets_stmt(x, k);
            }
        }
        Stmt::Assert(c) | Stmt::Assume(c) => rename_nondets_bool(c, k),
        _ => {}
    }
}

fn rename_nondets_int(e: &mut crate::ast::IntExpr, k: u32) {
    use crate::ast::IntExpr::*;
    match e {
        Nondet(name) => *name = format!("{name}@{k}"),
        Add(a, b) | Sub(a, b) | Mul(a, b) | BitAnd(a, b) | BitOr(a, b) | BitXor(a, b) => {
            rename_nondets_int(a, k);
            rename_nondets_int(b, k);
        }
        Shl(a, _) | Shr(a, _) => rename_nondets_int(a, k),
        Ite(c, a, b) => {
            rename_nondets_bool(c, k);
            rename_nondets_int(a, k);
            rename_nondets_int(b, k);
        }
        Const(_) | Var(_) => {}
    }
}

fn rename_nondets_bool(e: &mut BoolExpr, k: u32) {
    use crate::ast::BoolExpr::*;
    match e {
        Nondet(name) => *name = format!("{name}@{k}"),
        Not(a) => rename_nondets_bool(a, k),
        And(a, b) | Or(a, b) => {
            rename_nondets_bool(a, k);
            rename_nondets_bool(b, k);
        }
        Eq(a, b) | Ne(a, b) | Lt(a, b) | Le(a, b) | Gt(a, b) | Ge(a, b) => {
            rename_nondets_int(a, k);
            rename_nondets_int(b, k);
        }
        Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::ast::Thread;

    fn counting_loop() -> Program {
        Program {
            name: "loop".to_string(),
            word_width: 8,
            shared: vec![("x".to_string(), 0)],
            mutexes: vec![],
            threads: vec![Thread {
                name: "main".to_string(),
                body: vec![while_(
                    lt(v("x"), c(3)),
                    vec![assign("x", add(v("x"), c(1)))],
                )],
            }],
        }
    }

    #[test]
    fn unrolled_program_is_loop_free() {
        let p = counting_loop();
        assert!(p.has_loops());
        for k in 0..5 {
            let u = unroll_program(&p, k);
            assert!(!u.has_loops(), "bound {k}");
        }
    }

    #[test]
    fn zero_bound_is_assumption_only() {
        let u = unroll_program(&counting_loop(), 0);
        assert!(matches!(
            &u.threads[0].body[0],
            Stmt::Assume(BoolExpr::Not(_))
        ));
    }

    #[test]
    fn depth_matches_bound() {
        fn nesting_depth(s: &Stmt) -> u32 {
            match s {
                Stmt::If(_, t, _) => 1 + t.iter().map(nesting_depth).max().unwrap_or(0),
                _ => 0,
            }
        }
        for k in 1..6 {
            let u = unroll_program(&counting_loop(), k);
            assert_eq!(nesting_depth(&u.threads[0].body[0]), k, "bound {k}");
        }
    }

    #[test]
    fn each_level_has_unwinding_assumption_on_exit() {
        let u = unroll_program(&counting_loop(), 2);
        // Outermost if: else branch is the unwinding assumption.
        let Stmt::If(_, then_b, else_b) = &u.threads[0].body[0] else {
            panic!("expected if");
        };
        assert!(matches!(else_b[0], Stmt::Assume(_)));
        // The then branch ends with the next unrolling level.
        assert!(matches!(then_b.last(), Some(Stmt::If(..))));
    }

    #[test]
    fn name_records_bound() {
        let u = unroll_program(&counting_loop(), 3);
        assert_eq!(u.name, "loop@k3");
    }

    #[test]
    fn nested_loops_unroll() {
        let p = Program {
            name: "nested".to_string(),
            word_width: 8,
            shared: vec![("x".to_string(), 0)],
            mutexes: vec![],
            threads: vec![Thread {
                name: "main".to_string(),
                body: vec![while_(
                    lt(v("x"), c(2)),
                    vec![while_(
                        lt(v("y"), c(2)),
                        vec![assign("y", add(v("y"), c(1)))],
                    )],
                )],
            }],
        };
        let u = unroll_program(&p, 2);
        assert!(!u.has_loops());
    }
}
