//! Bounded loop unrolling — the BMC front-end step.
//!
//! Every `while (c) body` is replaced by `k` nested `if (c) { body … }`
//! with an innermost *unwinding assumption* `assume(!c)`, exactly the
//! transformation the paper describes in §5 ("a program can be converted to
//! a loop-free one by replacing every loop with a nested if-statement").
//! With the unwinding assumption, an `unsat` verdict means *correct up to
//! bound k*; a `sat` verdict is a genuine counterexample.

use crate::ast::{BoolExpr, Program, Stmt};

/// Name prefix of the boolean nondet *unwinding markers* injected by
/// [`unroll_program_sweep`]. A marker named `zpre!uw!<L>@<r>[@..]` guards
/// the unrolled iteration of loop `L` whose remaining-iteration count is
/// `r` (the first `@` suffix; later suffixes come from enclosing loop
/// copies). The SSA conversion prefixes boolean nondets with `ndb!`.
pub const SWEEP_MARKER_PREFIX: &str = "zpre!uw!";

/// Parses an unwinding-marker name (with or without the SSA `ndb!`
/// prefix), returning the marker's remaining-iteration count `r`. A bound
/// sweep at horizon `K` restricted to bound `k` assumes every marker with
/// `r <= K - k` false, which forces exactly the iterations beyond `k` of
/// every loop chain to be skipped — at any nesting depth, because nested
/// loops unroll to their enclosing copy's remaining count.
pub fn sweep_marker_remaining(name: &str) -> Option<u32> {
    let name = name.strip_prefix("ndb!").unwrap_or(name);
    let rest = name.strip_prefix(SWEEP_MARKER_PREFIX)?;
    let mut parts = rest.split('@');
    let _loop_id = parts.next()?;
    parts.next()?.parse().ok()
}

/// A program unrolled once at the sweep horizon, ready for incremental
/// bound restriction via its unwinding markers.
#[derive(Clone, Debug)]
pub struct SweepUnrolled {
    /// The marker-instrumented program unrolled to `max_bound`.
    pub program: Program,
    /// The sweep horizon `K`.
    pub max_bound: u32,
    /// Number of syntactic loops that received markers (0 = loop-free:
    /// every bound of the sweep is the same instance).
    pub num_loops: usize,
}

/// Unrolls `prog` once at the sweep horizon `max_bound`, injecting a
/// boolean-nondet *unwinding marker* at the head of every loop body before
/// unrolling. Each unrolled iteration then carries a distinct marker
/// (fresh-named by the per-level nondet renaming), and assuming the
/// markers with remaining count `<= max_bound - k` false restricts the
/// instance to exactly the scratch unrolling at bound `k`:
///
/// - a false marker forces its iteration's path guard false (the SSA
///   `assume` emits `guard → marker`), which is precisely the unwinding
///   assumption `parent_guard → ¬cond` of the shallower unrolling;
/// - enabled markers are free inputs, so they never constrain executions
///   that genuinely take the iteration;
/// - disabled iterations' events keep false guards, which every
///   memory-model constraint is already conditioned on.
pub fn unroll_program_sweep(prog: &Program, max_bound: u32) -> SweepUnrolled {
    assert!(max_bound >= 1, "a sweep needs at least bound 1");
    let mut marked = prog.clone();
    let mut next_loop = 0usize;
    for t in &mut marked.threads {
        for s in &mut t.body {
            inject_markers(s, &mut next_loop);
        }
    }
    let mut program = unroll_program(&marked, max_bound);
    program.name = format!("{}@sweep{}", prog.name, max_bound);
    SweepUnrolled {
        program,
        max_bound,
        num_loops: next_loop,
    }
}

fn inject_markers(s: &mut Stmt, next_loop: &mut usize) {
    match s {
        Stmt::While(_, body) => {
            let id = *next_loop;
            *next_loop += 1;
            for b in body.iter_mut() {
                inject_markers(b, next_loop);
            }
            body.insert(
                0,
                Stmt::Assume(BoolExpr::Nondet(format!("{SWEEP_MARKER_PREFIX}{id}"))),
            );
        }
        Stmt::If(_, t, e) => {
            for b in t.iter_mut().chain(e.iter_mut()) {
                inject_markers(b, next_loop);
            }
        }
        _ => {}
    }
}

/// Unrolls every loop in `prog` to depth `bound`, returning a loop-free
/// program. `bound = 0` replaces loops by their unwinding assumption alone.
pub fn unroll_program(prog: &Program, bound: u32) -> Program {
    let mut out = prog.clone();
    for t in &mut out.threads {
        t.body = unroll_stmts(&t.body, bound);
    }
    out.name = format!("{}@k{}", prog.name, bound);
    debug_assert!(!out.has_loops());
    out
}

fn unroll_stmts(stmts: &[Stmt], bound: u32) -> Vec<Stmt> {
    stmts.iter().map(|s| unroll_stmt(s, bound)).collect()
}

fn unroll_stmt(stmt: &Stmt, bound: u32) -> Stmt {
    match stmt {
        Stmt::While(c, body) => unroll_loop(c, body, bound),
        Stmt::If(c, t, e) => Stmt::If(c.clone(), unroll_stmts(t, bound), unroll_stmts(e, bound)),
        other => other.clone(),
    }
}

fn unroll_loop(cond: &BoolExpr, body: &[Stmt], k: u32) -> Stmt {
    if k == 0 {
        // Unwinding assumption: executions needing more iterations are
        // excluded from this bounded model.
        return Stmt::Assume(BoolExpr::Not(Box::new(cond.clone())));
    }
    let mut once = unroll_stmts(body, k); // nested loops unroll to the same bound
                                          // Each unrolled copy must draw fresh nondeterministic inputs: suffix the
                                          // nondet names with the remaining iteration count.
    for s in &mut once {
        rename_nondets_stmt(s, k);
    }
    once.push(unroll_loop(cond, body, k - 1));
    Stmt::If(
        cond.clone(),
        once,
        vec![Stmt::Assume(BoolExpr::Not(Box::new(cond.clone())))],
    )
}

fn rename_nondets_stmt(s: &mut Stmt, k: u32) {
    match s {
        Stmt::Assign(_, e) => rename_nondets_int(e, k),
        Stmt::If(c, t, e) => {
            rename_nondets_bool(c, k);
            for x in t.iter_mut().chain(e.iter_mut()) {
                rename_nondets_stmt(x, k);
            }
        }
        Stmt::While(c, b) => {
            rename_nondets_bool(c, k);
            for x in b {
                rename_nondets_stmt(x, k);
            }
        }
        Stmt::Assert(c) | Stmt::Assume(c) => rename_nondets_bool(c, k),
        _ => {}
    }
}

fn rename_nondets_int(e: &mut crate::ast::IntExpr, k: u32) {
    use crate::ast::IntExpr::*;
    match e {
        Nondet(name) => *name = format!("{name}@{k}"),
        Add(a, b) | Sub(a, b) | Mul(a, b) | BitAnd(a, b) | BitOr(a, b) | BitXor(a, b) => {
            rename_nondets_int(a, k);
            rename_nondets_int(b, k);
        }
        Shl(a, _) | Shr(a, _) => rename_nondets_int(a, k),
        Ite(c, a, b) => {
            rename_nondets_bool(c, k);
            rename_nondets_int(a, k);
            rename_nondets_int(b, k);
        }
        Const(_) | Var(_) => {}
    }
}

fn rename_nondets_bool(e: &mut BoolExpr, k: u32) {
    use crate::ast::BoolExpr::*;
    match e {
        Nondet(name) => *name = format!("{name}@{k}"),
        Not(a) => rename_nondets_bool(a, k),
        And(a, b) | Or(a, b) => {
            rename_nondets_bool(a, k);
            rename_nondets_bool(b, k);
        }
        Eq(a, b) | Ne(a, b) | Lt(a, b) | Le(a, b) | Gt(a, b) | Ge(a, b) => {
            rename_nondets_int(a, k);
            rename_nondets_int(b, k);
        }
        Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::ast::Thread;

    fn counting_loop() -> Program {
        Program {
            name: "loop".to_string(),
            word_width: 8,
            shared: vec![("x".to_string(), 0)],
            mutexes: vec![],
            threads: vec![Thread {
                name: "main".to_string(),
                body: vec![while_(
                    lt(v("x"), c(3)),
                    vec![assign("x", add(v("x"), c(1)))],
                )],
            }],
        }
    }

    #[test]
    fn unrolled_program_is_loop_free() {
        let p = counting_loop();
        assert!(p.has_loops());
        for k in 0..5 {
            let u = unroll_program(&p, k);
            assert!(!u.has_loops(), "bound {k}");
        }
    }

    #[test]
    fn zero_bound_is_assumption_only() {
        let u = unroll_program(&counting_loop(), 0);
        assert!(matches!(
            &u.threads[0].body[0],
            Stmt::Assume(BoolExpr::Not(_))
        ));
    }

    #[test]
    fn depth_matches_bound() {
        fn nesting_depth(s: &Stmt) -> u32 {
            match s {
                Stmt::If(_, t, _) => 1 + t.iter().map(nesting_depth).max().unwrap_or(0),
                _ => 0,
            }
        }
        for k in 1..6 {
            let u = unroll_program(&counting_loop(), k);
            assert_eq!(nesting_depth(&u.threads[0].body[0]), k, "bound {k}");
        }
    }

    #[test]
    fn each_level_has_unwinding_assumption_on_exit() {
        let u = unroll_program(&counting_loop(), 2);
        // Outermost if: else branch is the unwinding assumption.
        let Stmt::If(_, then_b, else_b) = &u.threads[0].body[0] else {
            panic!("expected if");
        };
        assert!(matches!(else_b[0], Stmt::Assume(_)));
        // The then branch ends with the next unrolling level.
        assert!(matches!(then_b.last(), Some(Stmt::If(..))));
    }

    #[test]
    fn name_records_bound() {
        let u = unroll_program(&counting_loop(), 3);
        assert_eq!(u.name, "loop@k3");
    }

    /// Collects every nondet name occurring in a statement tree.
    fn collect_nondets(stmts: &[Stmt], out: &mut Vec<String>) {
        fn walk_int(e: &crate::ast::IntExpr, out: &mut Vec<String>) {
            use crate::ast::IntExpr::*;
            match e {
                Nondet(n) => out.push(n.clone()),
                Add(a, b) | Sub(a, b) | Mul(a, b) | BitAnd(a, b) | BitOr(a, b) | BitXor(a, b) => {
                    walk_int(a, out);
                    walk_int(b, out);
                }
                Shl(a, _) | Shr(a, _) => walk_int(a, out),
                Ite(c, a, b) => {
                    walk_bool(c, out);
                    walk_int(a, out);
                    walk_int(b, out);
                }
                Const(_) | Var(_) => {}
            }
        }
        fn walk_bool(e: &BoolExpr, out: &mut Vec<String>) {
            use crate::ast::BoolExpr::*;
            match e {
                Nondet(n) => out.push(n.clone()),
                Not(a) => walk_bool(a, out),
                And(a, b) | Or(a, b) => {
                    walk_bool(a, out);
                    walk_bool(b, out);
                }
                Eq(a, b) | Ne(a, b) | Lt(a, b) | Le(a, b) | Gt(a, b) | Ge(a, b) => {
                    walk_int(a, out);
                    walk_int(b, out);
                }
                Const(_) => {}
            }
        }
        for s in stmts {
            match s {
                Stmt::Assign(_, e) => walk_int(e, out),
                Stmt::If(c, t, e) => {
                    walk_bool(c, out);
                    collect_nondets(t, out);
                    collect_nondets(e, out);
                }
                Stmt::While(c, b) => {
                    walk_bool(c, out);
                    collect_nondets(b, out);
                }
                Stmt::Assert(c) | Stmt::Assume(c) => walk_bool(c, out),
                _ => {}
            }
        }
    }

    #[test]
    fn sweep_unroll_marks_every_iteration_once() {
        let sw = unroll_program_sweep(&counting_loop(), 4);
        assert!(!sw.program.has_loops());
        assert_eq!(sw.num_loops, 1);
        let mut names = Vec::new();
        for t in &sw.program.threads {
            collect_nondets(&t.body, &mut names);
        }
        let mut remaining: Vec<u32> = names
            .iter()
            .filter_map(|n| sweep_marker_remaining(n))
            .collect();
        remaining.sort_unstable();
        // One marker per unrolled iteration, remaining counts 1..=4.
        assert_eq!(remaining, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sweep_markers_of_nested_loops_track_their_own_remaining_count() {
        let p = Program {
            name: "nested".to_string(),
            word_width: 8,
            shared: vec![("x".to_string(), 0), ("y".to_string(), 0)],
            mutexes: vec![],
            threads: vec![Thread {
                name: "main".to_string(),
                body: vec![while_(
                    lt(v("x"), c(2)),
                    vec![while_(
                        lt(v("y"), c(2)),
                        vec![assign("y", add(v("y"), c(1)))],
                    )],
                )],
            }],
        };
        let sw = unroll_program_sweep(&p, 3);
        assert_eq!(sw.num_loops, 2);
        let mut names = Vec::new();
        for t in &sw.program.threads {
            collect_nondets(&t.body, &mut names);
        }
        let markers: Vec<&String> = names
            .iter()
            .filter(|n| n.starts_with(SWEEP_MARKER_PREFIX))
            .collect();
        // Outer chain: 3 markers. Inner chains unroll to the enclosing
        // copy's remaining count: 3 + 2 + 1 markers.
        assert_eq!(markers.len(), 3 + (3 + 2 + 1));
        for m in &markers {
            let r = sweep_marker_remaining(m).expect("marker must parse");
            // The first @ suffix is the marker's own remaining count, and
            // later suffixes (from enclosing copies) never hide it.
            let first = m.split('@').nth(1).unwrap();
            assert_eq!(first.parse::<u32>().unwrap(), r);
        }
        // Restricting to bound k enables exactly the markers with
        // remaining > K - k: a chain of length L keeps L - (K - k) of its
        // iterations (markers inside disabled outer copies are also force-
        // disabled by the rule, which is harmless — their guards are
        // already false).
        for k in 1..=3u32 {
            let enabled = markers
                .iter()
                .filter(|m| sweep_marker_remaining(m).unwrap() > 3 - k)
                .count() as u32;
            let expected: u32 = [3u32, 3, 2, 1]
                .iter()
                .map(|&len| len.saturating_sub(3 - k))
                .sum();
            assert_eq!(enabled, expected, "bound {k}");
        }
    }

    #[test]
    fn sweep_marker_names_parse_with_and_without_ssa_prefix() {
        assert_eq!(sweep_marker_remaining("zpre!uw!0@3"), Some(3));
        assert_eq!(sweep_marker_remaining("ndb!zpre!uw!12@2@3"), Some(2));
        assert_eq!(sweep_marker_remaining("ndb!user_choice"), None);
        assert_eq!(sweep_marker_remaining("zpre!uw!0"), None);
    }

    #[test]
    fn sweep_of_loop_free_program_is_plain_unroll() {
        let p = Program {
            name: "straight".to_string(),
            word_width: 8,
            shared: vec![("x".to_string(), 0)],
            mutexes: vec![],
            threads: vec![Thread {
                name: "main".to_string(),
                body: vec![assign("x", add(v("x"), c(1)))],
            }],
        };
        let sw = unroll_program_sweep(&p, 5);
        assert_eq!(sw.num_loops, 0);
        assert_eq!(sw.program.threads, p.threads);
    }

    #[test]
    fn nested_loops_unroll() {
        let p = Program {
            name: "nested".to_string(),
            word_width: 8,
            shared: vec![("x".to_string(), 0)],
            mutexes: vec![],
            threads: vec![Thread {
                name: "main".to_string(),
                body: vec![while_(
                    lt(v("x"), c(2)),
                    vec![while_(
                        lt(v("y"), c(2)),
                        vec![assign("y", add(v("y"), c(1)))],
                    )],
                )],
            }],
        };
        let u = unroll_program(&p, 2);
        assert!(!u.has_loops());
    }
}
