//! Explicit-state interleaving exploration under sequential consistency.
//!
//! This is the reference oracle: it enumerates *all* interleavings of the
//! flat program at shared-access granularity (each `LoadShared` /
//! `StoreShared` is one atomic step) and reports whether any assertion can
//! fail. The SMT pipeline's SC verdicts are cross-validated against it in
//! the integration tests and property tests.

use crate::ast::{BoolExpr, IntExpr};
use crate::flat::{FlatProgram, Instr};
use std::collections::{BTreeMap, HashSet};

/// Result of an exploration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// No reachable assertion violation.
    Safe,
    /// Some interleaving violates an assertion.
    Unsafe,
    /// The state or havoc-width limit was exceeded.
    ResourceLimit,
}

/// Exploration limits.
#[derive(Copy, Clone, Debug)]
pub struct Limits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum word width for which havocs are enumerated exhaustively.
    pub max_havoc_width: u32,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 2_000_000,
            max_havoc_width: 4,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    pcs: Vec<usize>,
    locals: Vec<BTreeMap<String, u64>>,
    shared: Vec<u64>,
    mutex: Vec<Option<u8>>,
    started: Vec<bool>,
    /// Atomic-section holder and nesting depth.
    atomic: Option<(u8, u32)>,
}

/// Evaluates a local-only integer expression.
pub(crate) fn eval_int(e: &IntExpr, locals: &BTreeMap<String, u64>, width: u32) -> u64 {
    let mask = |v: u64| crate_truncate(v, width);
    match e {
        IntExpr::Const(v) => mask(*v),
        IntExpr::Var(x) => *locals.get(x).unwrap_or(&0),
        IntExpr::Nondet(n) => panic!("nondet {n:?} survived lowering"),
        IntExpr::Add(a, b) => {
            mask(eval_int(a, locals, width).wrapping_add(eval_int(b, locals, width)))
        }
        IntExpr::Sub(a, b) => {
            mask(eval_int(a, locals, width).wrapping_sub(eval_int(b, locals, width)))
        }
        IntExpr::Mul(a, b) => {
            mask(eval_int(a, locals, width).wrapping_mul(eval_int(b, locals, width)))
        }
        IntExpr::BitAnd(a, b) => eval_int(a, locals, width) & eval_int(b, locals, width),
        IntExpr::BitOr(a, b) => eval_int(a, locals, width) | eval_int(b, locals, width),
        IntExpr::BitXor(a, b) => eval_int(a, locals, width) ^ eval_int(b, locals, width),
        IntExpr::Shl(a, by) => mask(eval_int(a, locals, width) << by),
        IntExpr::Shr(a, by) => eval_int(a, locals, width) >> by,
        IntExpr::Ite(c, a, b) => {
            if eval_bool(c, locals, width) {
                eval_int(a, locals, width)
            } else {
                eval_int(b, locals, width)
            }
        }
    }
}

/// Evaluates a local-only Boolean expression.
pub(crate) fn eval_bool(e: &BoolExpr, locals: &BTreeMap<String, u64>, width: u32) -> bool {
    match e {
        BoolExpr::Const(v) => *v,
        BoolExpr::Nondet(n) => panic!("nondet {n:?} survived lowering"),
        BoolExpr::Not(a) => !eval_bool(a, locals, width),
        BoolExpr::And(a, b) => eval_bool(a, locals, width) && eval_bool(b, locals, width),
        BoolExpr::Or(a, b) => eval_bool(a, locals, width) || eval_bool(b, locals, width),
        BoolExpr::Eq(a, b) => eval_int(a, locals, width) == eval_int(b, locals, width),
        BoolExpr::Ne(a, b) => eval_int(a, locals, width) != eval_int(b, locals, width),
        BoolExpr::Lt(a, b) => eval_int(a, locals, width) < eval_int(b, locals, width),
        BoolExpr::Le(a, b) => eval_int(a, locals, width) <= eval_int(b, locals, width),
        BoolExpr::Gt(a, b) => eval_int(a, locals, width) > eval_int(b, locals, width),
        BoolExpr::Ge(a, b) => eval_int(a, locals, width) >= eval_int(b, locals, width),
    }
}

fn crate_truncate(v: u64, width: u32) -> u64 {
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Explores all SC interleavings of `fp`.
pub fn check_sc(fp: &FlatProgram, limits: Limits) -> Outcome {
    let nt = fp.threads.len();
    let init = State {
        pcs: vec![0; nt],
        locals: vec![BTreeMap::new(); nt],
        shared: fp.shared_init.clone(),
        mutex: vec![None; fp.num_mutexes],
        started: {
            let mut s = vec![false; nt];
            s[0] = true;
            s
        },
        atomic: None,
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![init.clone()];
    visited.insert(init);
    while let Some(st) = stack.pop() {
        if visited.len() > limits.max_states {
            return Outcome::ResourceLimit;
        }
        for t in 0..nt {
            if !enabled(fp, &st, t) {
                continue;
            }
            match step(fp, &st, t, limits) {
                StepResult::Violation => return Outcome::Unsafe,
                StepResult::LimitExceeded => return Outcome::ResourceLimit,
                StepResult::Successors(succs) => {
                    for s in succs {
                        if visited.insert(s.clone()) {
                            stack.push(s);
                        }
                    }
                }
            }
        }
    }
    Outcome::Safe
}

fn finished(fp: &FlatProgram, st: &State, t: usize) -> bool {
    st.started[t] && st.pcs[t] >= fp.threads[t].code.len()
}

fn enabled(fp: &FlatProgram, st: &State, t: usize) -> bool {
    if !st.started[t] || st.pcs[t] >= fp.threads[t].code.len() {
        return false;
    }
    if let Some((holder, _)) = st.atomic {
        if holder as usize != t {
            return false;
        }
    }
    match &fp.threads[t].code[st.pcs[t]] {
        Instr::Lock(m) => st.mutex[*m].is_none(),
        Instr::Join(i) => finished(fp, st, *i),
        _ => true,
    }
}

enum StepResult {
    Successors(Vec<State>),
    Violation,
    LimitExceeded,
}

fn step(fp: &FlatProgram, st: &State, t: usize, limits: Limits) -> StepResult {
    let w = fp.word_width;
    let instr = &fp.threads[t].code[st.pcs[t]];
    let mut next = st.clone();
    next.pcs[t] += 1;
    match instr {
        Instr::LoadShared { dst, var } => {
            next.locals[t].insert(dst.clone(), st.shared[*var]);
        }
        Instr::StoreShared { var, val } => {
            next.shared[*var] = eval_int(val, &st.locals[t], w);
        }
        Instr::AssignLocal { dst, val } => {
            let v = eval_int(val, &st.locals[t], w);
            next.locals[t].insert(dst.clone(), v);
        }
        Instr::HavocInt { dst } => {
            if w > limits.max_havoc_width {
                return StepResult::LimitExceeded;
            }
            let succs = (0..(1u64 << w))
                .map(|v| {
                    let mut s = next.clone();
                    s.locals[t].insert(dst.clone(), v);
                    s
                })
                .collect();
            return StepResult::Successors(succs);
        }
        Instr::HavocBool { dst } => {
            let succs = (0..2u64)
                .map(|v| {
                    let mut s = next.clone();
                    s.locals[t].insert(dst.clone(), v);
                    s
                })
                .collect();
            return StepResult::Successors(succs);
        }
        Instr::JmpIfFalse { cond, target } => {
            if !eval_bool(cond, &st.locals[t], w) {
                next.pcs[t] = *target;
            }
        }
        Instr::Jmp { target } => {
            next.pcs[t] = *target;
        }
        Instr::Assert(cond) => {
            if !eval_bool(cond, &st.locals[t], w) {
                return StepResult::Violation;
            }
        }
        Instr::Assume(cond) => {
            if !eval_bool(cond, &st.locals[t], w) {
                // Infeasible execution: discard this branch entirely.
                return StepResult::Successors(Vec::new());
            }
        }
        Instr::Lock(m) => {
            debug_assert!(st.mutex[*m].is_none());
            next.mutex[*m] = Some(t as u8);
        }
        Instr::Unlock(m) => {
            if st.mutex[*m] != Some(t as u8) {
                // Unlock of a mutex not held by this thread: undefined
                // behaviour — treat the execution as discarded.
                return StepResult::Successors(Vec::new());
            }
            next.mutex[*m] = None;
        }
        Instr::Fence => {}
        Instr::AtomicBegin => {
            next.atomic = match st.atomic {
                None => Some((t as u8, 1)),
                Some((h, d)) => {
                    debug_assert_eq!(h as usize, t);
                    Some((h, d + 1))
                }
            };
        }
        Instr::AtomicEnd => {
            next.atomic = match st.atomic {
                Some((h, 1)) => {
                    debug_assert_eq!(h as usize, t);
                    None
                }
                Some((h, d)) => Some((h, d - 1)),
                None => None,
            };
        }
        Instr::Spawn(i) => {
            next.started[*i] = true;
        }
        Instr::Join(_) => {} // enabledness already checked
    }
    StepResult::Successors(vec![next])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::flat::flatten;
    use crate::unroll::unroll_program;

    fn check(p: &crate::ast::Program) -> Outcome {
        let u = unroll_program(p, 4);
        check_sc(&flatten(&u), Limits::default())
    }

    #[test]
    fn sequential_assert_holds() {
        let p = ProgramBuilder::new("seq")
            .shared("x", 0)
            .main(vec![assign("x", c(5)), assert_(eq(v("x"), c(5)))])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    #[test]
    fn sequential_assert_fails() {
        let p = ProgramBuilder::new("seq-bad")
            .shared("x", 0)
            .main(vec![assign("x", c(5)), assert_(eq(v("x"), c(6)))])
            .build();
        assert_eq!(check(&p), Outcome::Unsafe);
    }

    /// The paper's running example (Fig. 2): two threads incrementing each
    /// other's variable; `m == 0 && n == 0` is unreachable under SC.
    #[test]
    fn paper_example_is_safe_under_sc() {
        // m and n must be shared so main can observe them in the assertion.
        let p = ProgramBuilder::new("fig2")
            .shared("x", 0)
            .shared("y", 0)
            .shared("m", 0)
            .shared("n", 0)
            .thread(
                "t1",
                vec![assign("x", add(v("y"), c(1))), assign("m", v("y"))],
            )
            .thread(
                "t2",
                vec![assign("y", add(v("x"), c(1))), assign("n", v("x"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("m"), c(0)), eq(v("n"), c(0))))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    /// Unprotected counter increments race: final value can be 1.
    #[test]
    fn racy_increment_is_unsafe() {
        let inc = vec![assign("r", v("c")), assign("c", add(v("r"), c(1)))];
        let p = ProgramBuilder::new("race")
            .shared("c", 0)
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("c"), c(2))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Unsafe);
    }

    /// The same counter protected by a mutex is safe.
    #[test]
    fn locked_increment_is_safe() {
        let inc = vec![
            lock("m"),
            assign("r", v("c")),
            assign("c", add(v("r"), c(1))),
            unlock("m"),
        ];
        let p = ProgramBuilder::new("locked")
            .shared("c", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("c"), c(2))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    /// Atomic sections restore atomicity like locks do.
    #[test]
    fn atomic_increment_is_safe() {
        let mut body = atomic(vec![assign("r", v("c")), assign("c", add(v("r"), c(1)))]);
        let mut body2 = body.clone();
        let p = ProgramBuilder::new("atomic")
            .shared("c", 0)
            .thread("w1", std::mem::take(&mut body))
            .thread("w2", std::mem::take(&mut body2))
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("c"), c(2))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    /// Store-buffering litmus: under SC, both registers zero is impossible.
    #[test]
    fn store_buffering_safe_under_sc() {
        let p = ProgramBuilder::new("sb")
            .shared("x", 0)
            .shared("y", 0)
            .shared("r1", 0)
            .shared("r2", 0)
            .thread("t1", vec![assign("x", c(1)), assign("r1", v("y"))])
            .thread("t2", vec![assign("y", c(1)), assign("r2", v("x"))])
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("r1"), c(0)), eq(v("r2"), c(0))))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    /// Nondeterministic input: assert can fail for some value.
    #[test]
    fn nondet_violation_found() {
        let p = ProgramBuilder::new("nd")
            .width(3)
            .shared("x", 0)
            .main(vec![
                assign("x", nondet("n")),
                assume(lt(v("x"), c(5))),
                assert_(ne(v("x"), c(3))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Unsafe);
    }

    /// The assumption excludes the violating value.
    #[test]
    fn assume_prunes_violation() {
        let p = ProgramBuilder::new("nd2")
            .width(3)
            .shared("x", 0)
            .main(vec![
                assign("x", nondet("n")),
                assume(lt(v("x"), c(3))),
                assert_(ne(v("x"), c(5))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    /// Loop with unrolling: counting to 3 then asserting equals 3.
    #[test]
    fn unrolled_loop_counts() {
        let p = ProgramBuilder::new("loop")
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(eq(v("x"), c(3))),
            ])
            .build();
        assert_eq!(check(&p), Outcome::Safe);
    }

    /// Insufficient unroll bound: the unwinding assumption prunes all
    /// executions, so nothing is reported (vacuously safe).
    #[test]
    fn short_unroll_is_vacuously_safe() {
        let p = ProgramBuilder::new("loop")
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", add(v("x"), c(1)))]),
                assert_(eq(v("x"), c(99))),
            ])
            .build();
        let u = unroll_program(&p, 1);
        assert_eq!(check_sc(&flatten(&u), Limits::default()), Outcome::Safe);
        // With a sufficient bound the violation shows.
        let u3 = unroll_program(&p, 3);
        assert_eq!(check_sc(&flatten(&u3), Limits::default()), Outcome::Unsafe);
    }

    #[test]
    fn state_limit_reported() {
        let p = ProgramBuilder::new("big")
            .width(8)
            .shared("x", 0)
            .main(vec![assign("x", nondet("n")), assert_(lt(v("x"), c(255)))])
            .build();
        // width 8 > max_havoc_width 4
        let u = unroll_program(&p, 1);
        assert_eq!(
            check_sc(&flatten(&u), Limits::default()),
            Outcome::ResourceLimit
        );
    }
}
