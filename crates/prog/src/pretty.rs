//! Pretty-printing of programs (C-like surface syntax) for logs and docs.

use crate::ast::{BoolExpr, IntExpr, Program, Stmt};
use std::fmt::Write;

/// Renders a program in a C-like concrete syntax.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program {}", p.name);
    let _ = writeln!(out, "width {};", p.word_width);
    for (n, init) in &p.shared {
        let _ = writeln!(out, "shared int {n} = {init};");
    }
    for m in &p.mutexes {
        let _ = writeln!(out, "mutex {m};");
    }
    let names: Vec<&str> = p.threads.iter().map(|t| t.name.as_str()).collect();
    for t in &p.threads {
        let _ = writeln!(out, "\nthread {} {{", t.name);
        for s in &t.body {
            write_stmt(&mut out, s, 1, &names);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, level: usize, names: &[&str]) {
    indent(out, level);
    match s {
        Stmt::Assign(x, e) => {
            let _ = writeln!(out, "{x} = {};", int_str(e));
        }
        Stmt::If(c, t, e) => {
            let _ = writeln!(out, "if ({}) {{", bool_str(c));
            for x in t {
                write_stmt(out, x, level + 1, names);
            }
            if e.is_empty() {
                indent(out, level);
                let _ = writeln!(out, "}}");
            } else {
                indent(out, level);
                let _ = writeln!(out, "}} else {{");
                for x in e {
                    write_stmt(out, x, level + 1, names);
                }
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::While(c, b) => {
            let _ = writeln!(out, "while ({}) {{", bool_str(c));
            for x in b {
                write_stmt(out, x, level + 1, names);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::Assert(c) => {
            let _ = writeln!(out, "assert({});", bool_str(c));
        }
        Stmt::Assume(c) => {
            let _ = writeln!(out, "assume({});", bool_str(c));
        }
        Stmt::Lock(m) => {
            let _ = writeln!(out, "lock({m});");
        }
        Stmt::Unlock(m) => {
            let _ = writeln!(out, "unlock({m});");
        }
        Stmt::Fence => {
            let _ = writeln!(out, "fence();");
        }
        Stmt::AtomicBegin => {
            let _ = writeln!(out, "atomic_begin();");
        }
        Stmt::AtomicEnd => {
            let _ = writeln!(out, "atomic_end();");
        }
        Stmt::Spawn(i) => {
            let _ = writeln!(
                out,
                "spawn({});",
                names.get(*i).copied().unwrap_or("thread_?")
            );
        }
        Stmt::Join(i) => {
            let _ = writeln!(
                out,
                "join({});",
                names.get(*i).copied().unwrap_or("thread_?")
            );
        }
        Stmt::Skip => {
            let _ = writeln!(out, ";");
        }
    }
}

fn int_str(e: &IntExpr) -> String {
    match e {
        IntExpr::Const(v) => v.to_string(),
        IntExpr::Var(x) => x.clone(),
        IntExpr::Nondet(n) => format!("nondet({n})"),
        IntExpr::Add(a, b) => format!("({} + {})", int_str(a), int_str(b)),
        IntExpr::Sub(a, b) => format!("({} - {})", int_str(a), int_str(b)),
        IntExpr::Mul(a, b) => format!("({} * {})", int_str(a), int_str(b)),
        IntExpr::BitAnd(a, b) => format!("({} & {})", int_str(a), int_str(b)),
        IntExpr::BitOr(a, b) => format!("({} | {})", int_str(a), int_str(b)),
        IntExpr::BitXor(a, b) => format!("({} ^ {})", int_str(a), int_str(b)),
        IntExpr::Shl(a, by) => format!("({} << {by})", int_str(a)),
        IntExpr::Shr(a, by) => format!("({} >> {by})", int_str(a)),
        IntExpr::Ite(c, a, b) => {
            format!("({} ? {} : {})", bool_str(c), int_str(a), int_str(b))
        }
    }
}

fn bool_str(e: &BoolExpr) -> String {
    match e {
        BoolExpr::Const(v) => v.to_string(),
        BoolExpr::Nondet(n) => format!("nondet_bool({n})"),
        BoolExpr::Not(a) => format!("!({})", bool_str(a)),
        BoolExpr::And(a, b) => format!("({} && {})", bool_str(a), bool_str(b)),
        BoolExpr::Or(a, b) => format!("({} || {})", bool_str(a), bool_str(b)),
        BoolExpr::Eq(a, b) => format!("({} == {})", int_str(a), int_str(b)),
        BoolExpr::Ne(a, b) => format!("({} != {})", int_str(a), int_str(b)),
        BoolExpr::Lt(a, b) => format!("({} < {})", int_str(a), int_str(b)),
        BoolExpr::Le(a, b) => format!("({} <= {})", int_str(a), int_str(b)),
        BoolExpr::Gt(a, b) => format!("({} > {})", int_str(a), int_str(b)),
        BoolExpr::Ge(a, b) => format!("({} >= {})", int_str(a), int_str(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    #[test]
    fn renders_all_constructs() {
        let p = ProgramBuilder::new("demo")
            .shared("x", 0)
            .mutex("m")
            .thread(
                "t1",
                vec![
                    lock("m"),
                    if_(
                        lt(v("x"), c(3)),
                        vec![assign("x", add(v("x"), c(1)))],
                        vec![Stmt::Skip],
                    ),
                    unlock("m"),
                    fence(),
                    assert_(ne(v("x"), c(9))),
                    assume(ge(v("x"), c(0))),
                ],
            )
            .build();
        let s = pretty_program(&p);
        for needle in [
            "shared int x = 0;",
            "mutex m;",
            "lock(m);",
            "if ((x < 3))",
            "(x + 1)",
            "} else {",
            "unlock(m);",
            "fence();",
            "assert((x != 9));",
            "assume((x >= 0));",
            "spawn(t1);",
            "join(t1);",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn renders_loops_and_nondet() {
        let p = ProgramBuilder::new("demo2")
            .shared("x", 0)
            .main(vec![
                while_(lt(v("x"), c(3)), vec![assign("x", nondet("k"))]),
                assert_(eq(ite(lt(v("x"), c(2)), c(1), c(0)), c(0))),
            ])
            .build();
        let s = pretty_program(&p);
        assert!(s.contains("while ((x < 3))"));
        assert!(s.contains("nondet(k)"));
        assert!(s.contains("? 1 : 0"));
    }
}
