//! Abstract syntax of the concurrent mini-language.
//!
//! The language models the subset of C that the SV-COMP *ConcurrencySafety*
//! programs exercise after preprocessing: integer (bit-vector) data,
//! shared/local variables, structured control flow with bounded loops,
//! pthread-style spawn/join, mutexes, `__VERIFIER_atomic` sections, memory
//! fences, `assume`/`assert`, and nondeterministic inputs.
//!
//! Conventions:
//! - `threads[0]` is the main thread; other threads run only between the
//!   `Spawn`/`Join` statements that reference them.
//! - A variable name appearing in [`Program::shared`] is a shared variable;
//!   every other name is local to its thread (implicitly zero-initialized).
//! - All integers have the program's `word_width` (1..=64 bits), with
//!   wrapping arithmetic and unsigned comparisons.

use std::collections::BTreeSet;
use std::fmt;

/// Integer-sorted expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IntExpr {
    /// Constant (truncated to the program width).
    Const(u64),
    /// Variable read (shared or local, resolved by name).
    Var(String),
    /// Nondeterministic input (each occurrence is a distinct input,
    /// identified by name).
    Nondet(String),
    /// Wrapping addition.
    Add(Box<IntExpr>, Box<IntExpr>),
    /// Wrapping subtraction.
    Sub(Box<IntExpr>, Box<IntExpr>),
    /// Wrapping multiplication.
    Mul(Box<IntExpr>, Box<IntExpr>),
    /// Bitwise and.
    BitAnd(Box<IntExpr>, Box<IntExpr>),
    /// Bitwise or.
    BitOr(Box<IntExpr>, Box<IntExpr>),
    /// Bitwise xor.
    BitXor(Box<IntExpr>, Box<IntExpr>),
    /// Left shift by a constant.
    Shl(Box<IntExpr>, u32),
    /// Logical right shift by a constant.
    Shr(Box<IntExpr>, u32),
    /// Conditional expression.
    Ite(Box<BoolExpr>, Box<IntExpr>, Box<IntExpr>),
}

/// Boolean-sorted expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoolExpr {
    /// Constant.
    Const(bool),
    /// Nondeterministic Boolean input.
    Nondet(String),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Equality of integers.
    Eq(Box<IntExpr>, Box<IntExpr>),
    /// Disequality of integers.
    Ne(Box<IntExpr>, Box<IntExpr>),
    /// Unsigned less-than.
    Lt(Box<IntExpr>, Box<IntExpr>),
    /// Unsigned less-or-equal.
    Le(Box<IntExpr>, Box<IntExpr>),
    /// Unsigned greater-than.
    Gt(Box<IntExpr>, Box<IntExpr>),
    /// Unsigned greater-or-equal.
    Ge(Box<IntExpr>, Box<IntExpr>),
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `x := e` — a shared write if `x` is shared, else a local assignment.
    Assign(String, IntExpr),
    /// Conditional.
    If(BoolExpr, Vec<Stmt>, Vec<Stmt>),
    /// Loop — must be unrolled (see `unroll`) before SSA conversion.
    While(BoolExpr, Vec<Stmt>),
    /// Safety property: reachable violation ⇔ the program is unsafe.
    Assert(BoolExpr),
    /// Global path constraint (`__VERIFIER_assume`).
    Assume(BoolExpr),
    /// Acquire a mutex.
    Lock(String),
    /// Release a mutex.
    Unlock(String),
    /// Full memory fence.
    Fence,
    /// Begin of a `__VERIFIER_atomic` section.
    AtomicBegin,
    /// End of a `__VERIFIER_atomic` section.
    AtomicEnd,
    /// Start the referenced thread (index into [`Program::threads`]).
    Spawn(usize),
    /// Wait for the referenced thread to finish.
    Join(usize),
    /// No-op.
    Skip,
}

/// One thread's code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Thread {
    /// Display name.
    pub name: String,
    /// Statements.
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Display name (benchmark id).
    pub name: String,
    /// Bit width of every integer (1..=64).
    pub word_width: u32,
    /// Shared variables with their initial values (written by the main
    /// thread as its first events, as in the paper's running example).
    pub shared: Vec<(String, u64)>,
    /// Mutex names.
    pub mutexes: Vec<String>,
    /// Threads; index 0 is main.
    pub threads: Vec<Thread>,
}

/// Structural validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Spawn/Join references a thread index that does not exist or is main.
    BadThreadRef(usize),
    /// Lock/Unlock references an undeclared mutex.
    UnknownMutex(String),
    /// A worker thread is not spawned exactly once.
    BadSpawnCount(usize),
    /// Spawn/Join appears inside a branch or loop (must be unconditional).
    ConditionalSpawn,
    /// A shared variable is declared twice.
    DuplicateShared(String),
    /// Width outside 1..=64.
    BadWidth(u32),
    /// Main thread spawned or joined itself.
    MainThreadRef,
    /// A mutex is re-acquired while provably already held (held on every
    /// path reaching the second `Lock`) — self-deadlock.
    DoubleLock(String),
    /// A mutex is released at a point where no path could have acquired
    /// it.
    UnlockWithoutLock(String),
    /// A thread is joined but never spawned anywhere in the program.
    JoinWithoutSpawn(usize),
    /// An atomic section is unbalanced: `AtomicEnd` without a matching
    /// `AtomicBegin` in the same statement sequence, or a sequence ends
    /// with a section still open.
    UnbalancedAtomic,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadThreadRef(i) => write!(f, "spawn/join of unknown thread {i}"),
            ValidationError::UnknownMutex(m) => write!(f, "unknown mutex {m:?}"),
            ValidationError::BadSpawnCount(i) => {
                write!(f, "thread {i} must be spawned exactly once")
            }
            ValidationError::ConditionalSpawn => {
                write!(f, "spawn/join must not appear inside a branch or loop")
            }
            ValidationError::DuplicateShared(v) => write!(f, "duplicate shared variable {v:?}"),
            ValidationError::BadWidth(w) => write!(f, "word width {w} outside 1..=64"),
            ValidationError::MainThreadRef => write!(f, "spawn/join of the main thread"),
            ValidationError::DoubleLock(m) => {
                write!(f, "mutex {m:?} locked while already held")
            }
            ValidationError::UnlockWithoutLock(m) => {
                write!(f, "mutex {m:?} unlocked while never held")
            }
            ValidationError::JoinWithoutSpawn(i) => {
                write!(f, "join of thread {i} which is never spawned")
            }
            ValidationError::UnbalancedAtomic => {
                write!(f, "unbalanced __VERIFIER_atomic begin/end section")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Index of a shared variable, if `name` is shared.
    pub fn shared_index(&self, name: &str) -> Option<usize> {
        self.shared.iter().position(|(n, _)| n == name)
    }

    /// Index of a mutex.
    pub fn mutex_index(&self, name: &str) -> Option<usize> {
        self.mutexes.iter().position(|n| n == name)
    }

    /// Checks structural well-formedness.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if !(1..=64).contains(&self.word_width) {
            return Err(ValidationError::BadWidth(self.word_width));
        }
        let mut seen = BTreeSet::new();
        for (n, _) in &self.shared {
            if !seen.insert(n.clone()) {
                return Err(ValidationError::DuplicateShared(n.clone()));
            }
        }
        fn walk(
            stmts: &[Stmt],
            prog: &Program,
            top_level: bool,
            spawns: &mut Vec<usize>,
        ) -> Result<(), ValidationError> {
            for s in stmts {
                match s {
                    Stmt::Spawn(i) | Stmt::Join(i) => {
                        if *i == 0 {
                            return Err(ValidationError::MainThreadRef);
                        }
                        if *i >= prog.threads.len() {
                            return Err(ValidationError::BadThreadRef(*i));
                        }
                        if !top_level {
                            return Err(ValidationError::ConditionalSpawn);
                        }
                        if matches!(s, Stmt::Spawn(_)) {
                            spawns[*i] += 1;
                        }
                    }
                    Stmt::Lock(m) | Stmt::Unlock(m) if prog.mutex_index(m).is_none() => {
                        return Err(ValidationError::UnknownMutex(m.clone()));
                    }
                    Stmt::If(_, t, e) => {
                        walk(t, prog, false, spawns)?;
                        walk(e, prog, false, spawns)?;
                    }
                    Stmt::While(_, b) => walk(b, prog, false, spawns)?,
                    _ => {}
                }
            }
            Ok(())
        }
        let mut spawns = vec![0usize; self.threads.len()];
        for t in &self.threads {
            walk(&t.body, self, true, &mut spawns)?;
        }
        // A joined-but-never-spawned thread gets the specific lint before
        // the generic spawn-count check below catches it.
        fn collect_joins(stmts: &[Stmt], joins: &mut Vec<usize>) {
            for s in stmts {
                match s {
                    Stmt::Join(i) => joins.push(*i),
                    Stmt::If(_, t, e) => {
                        collect_joins(t, joins);
                        collect_joins(e, joins);
                    }
                    Stmt::While(_, b) => collect_joins(b, joins),
                    _ => {}
                }
            }
        }
        let mut joins = Vec::new();
        for t in &self.threads {
            collect_joins(&t.body, &mut joins);
        }
        for j in joins {
            if spawns[j] == 0 {
                return Err(ValidationError::JoinWithoutSpawn(j));
            }
        }
        // Every worker thread must be spawned exactly once (the encoder's
        // guard-true events and spawn edges rely on this).
        for (i, &n) in spawns.iter().enumerate().skip(1) {
            if n != 1 {
                return Err(ValidationError::BadSpawnCount(i));
            }
        }
        // Lockset lint: `must` holds mutexes held on every path reaching
        // the statement, `may` those held on some path — only provable
        // misuse is flagged (a conditionally held mutex raises nothing).
        fn locksets(
            stmts: &[Stmt],
            must: &mut BTreeSet<String>,
            may: &mut BTreeSet<String>,
        ) -> Result<(), ValidationError> {
            for s in stmts {
                match s {
                    Stmt::Lock(m) => {
                        if must.contains(m) {
                            return Err(ValidationError::DoubleLock(m.clone()));
                        }
                        must.insert(m.clone());
                        may.insert(m.clone());
                    }
                    Stmt::Unlock(m) => {
                        if !may.contains(m) {
                            return Err(ValidationError::UnlockWithoutLock(m.clone()));
                        }
                        must.remove(m);
                        may.remove(m);
                    }
                    Stmt::If(_, t, e) => {
                        let (mut must_t, mut may_t) = (must.clone(), may.clone());
                        let (mut must_e, mut may_e) = (must.clone(), may.clone());
                        locksets(t, &mut must_t, &mut may_t)?;
                        locksets(e, &mut must_e, &mut may_e)?;
                        *must = must_t.intersection(&must_e).cloned().collect();
                        *may = may_t.union(&may_e).cloned().collect();
                    }
                    Stmt::While(_, b) => {
                        // One symbolic iteration finds errors inside the
                        // body; the loop may run zero times, so afterwards
                        // only the intersection survives as `must`.
                        let (mut must_b, mut may_b) = (must.clone(), may.clone());
                        locksets(b, &mut must_b, &mut may_b)?;
                        *must = must.intersection(&must_b).cloned().collect();
                        *may = may.union(&may_b).cloned().collect();
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        // Atomic-balance lint: sections must open and close within one
        // statement sequence (branching into or out of a section has no
        // execution-order meaning).
        fn atomic_balance(stmts: &[Stmt]) -> Result<(), ValidationError> {
            let mut depth = 0i32;
            for s in stmts {
                match s {
                    Stmt::AtomicBegin => depth += 1,
                    Stmt::AtomicEnd => {
                        depth -= 1;
                        if depth < 0 {
                            return Err(ValidationError::UnbalancedAtomic);
                        }
                    }
                    Stmt::If(_, t, e) => {
                        atomic_balance(t)?;
                        atomic_balance(e)?;
                    }
                    Stmt::While(_, b) => atomic_balance(b)?,
                    _ => {}
                }
            }
            if depth != 0 {
                return Err(ValidationError::UnbalancedAtomic);
            }
            Ok(())
        }
        for t in &self.threads {
            let (mut must, mut may) = (BTreeSet::new(), BTreeSet::new());
            locksets(&t.body, &mut must, &mut may)?;
            atomic_balance(&t.body)?;
        }
        Ok(())
    }

    /// `true` if any statement (in any thread) is a loop.
    pub fn has_loops(&self) -> bool {
        fn any_loop(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::While(..) => true,
                Stmt::If(_, t, e) => any_loop(t) || any_loop(e),
                _ => false,
            })
        }
        self.threads.iter().any(|t| any_loop(&t.body))
    }
}

/// Expression/statement construction helpers — the builder DSL used by the
/// workload generators and the examples.
pub mod build {
    use super::*;

    /// Integer constant.
    pub fn c(v: u64) -> IntExpr {
        IntExpr::Const(v)
    }
    /// Variable reference.
    pub fn v(name: &str) -> IntExpr {
        IntExpr::Var(name.to_string())
    }
    /// Nondeterministic integer.
    pub fn nondet(name: &str) -> IntExpr {
        IntExpr::Nondet(name.to_string())
    }
    /// Addition.
    pub fn add(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::Add(Box::new(a), Box::new(b))
    }
    /// Subtraction.
    pub fn sub(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::Sub(Box::new(a), Box::new(b))
    }
    /// Multiplication.
    pub fn mul(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::Mul(Box::new(a), Box::new(b))
    }
    /// Bitwise and.
    pub fn band(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::BitAnd(Box::new(a), Box::new(b))
    }
    /// Bitwise or.
    pub fn bor(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::BitOr(Box::new(a), Box::new(b))
    }
    /// Bitwise xor.
    pub fn bxor(a: IntExpr, b: IntExpr) -> IntExpr {
        IntExpr::BitXor(Box::new(a), Box::new(b))
    }
    /// Conditional expression.
    pub fn ite(c: BoolExpr, t: IntExpr, e: IntExpr) -> IntExpr {
        IntExpr::Ite(Box::new(c), Box::new(t), Box::new(e))
    }
    /// Boolean constant.
    pub fn b(x: bool) -> BoolExpr {
        BoolExpr::Const(x)
    }
    /// Nondeterministic Boolean.
    pub fn nondet_bool(name: &str) -> BoolExpr {
        BoolExpr::Nondet(name.to_string())
    }
    /// Negation.
    pub fn not(a: BoolExpr) -> BoolExpr {
        BoolExpr::Not(Box::new(a))
    }
    /// Conjunction.
    pub fn and(a: BoolExpr, bx: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(a), Box::new(bx))
    }
    /// Disjunction.
    pub fn or(a: BoolExpr, bx: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(a), Box::new(bx))
    }
    /// Equality.
    pub fn eq(a: IntExpr, bx: IntExpr) -> BoolExpr {
        BoolExpr::Eq(Box::new(a), Box::new(bx))
    }
    /// Disequality.
    pub fn ne(a: IntExpr, bx: IntExpr) -> BoolExpr {
        BoolExpr::Ne(Box::new(a), Box::new(bx))
    }
    /// Unsigned less-than.
    pub fn lt(a: IntExpr, bx: IntExpr) -> BoolExpr {
        BoolExpr::Lt(Box::new(a), Box::new(bx))
    }
    /// Unsigned less-or-equal.
    pub fn le(a: IntExpr, bx: IntExpr) -> BoolExpr {
        BoolExpr::Le(Box::new(a), Box::new(bx))
    }
    /// Unsigned greater-than.
    pub fn gt(a: IntExpr, bx: IntExpr) -> BoolExpr {
        BoolExpr::Gt(Box::new(a), Box::new(bx))
    }
    /// Unsigned greater-or-equal.
    pub fn ge(a: IntExpr, bx: IntExpr) -> BoolExpr {
        BoolExpr::Ge(Box::new(a), Box::new(bx))
    }

    /// Assignment statement.
    pub fn assign(x: &str, e: IntExpr) -> Stmt {
        Stmt::Assign(x.to_string(), e)
    }
    /// If-then-else.
    pub fn if_(c: BoolExpr, t: Vec<Stmt>, e: Vec<Stmt>) -> Stmt {
        Stmt::If(c, t, e)
    }
    /// If-then.
    pub fn when(c: BoolExpr, t: Vec<Stmt>) -> Stmt {
        Stmt::If(c, t, Vec::new())
    }
    /// Bounded loop (unrolled by the front-end).
    pub fn while_(c: BoolExpr, body: Vec<Stmt>) -> Stmt {
        Stmt::While(c, body)
    }
    /// Assertion.
    pub fn assert_(c: BoolExpr) -> Stmt {
        Stmt::Assert(c)
    }
    /// Assumption.
    pub fn assume(c: BoolExpr) -> Stmt {
        Stmt::Assume(c)
    }
    /// Lock acquisition.
    pub fn lock(m: &str) -> Stmt {
        Stmt::Lock(m.to_string())
    }
    /// Lock release.
    pub fn unlock(m: &str) -> Stmt {
        Stmt::Unlock(m.to_string())
    }
    /// Full fence.
    pub fn fence() -> Stmt {
        Stmt::Fence
    }
    /// An atomic section wrapping `body`.
    pub fn atomic(body: Vec<Stmt>) -> Vec<Stmt> {
        let mut v = vec![Stmt::AtomicBegin];
        v.extend(body);
        v.push(Stmt::AtomicEnd);
        v
    }
    /// Spawn a thread by index.
    pub fn spawn(i: usize) -> Stmt {
        Stmt::Spawn(i)
    }
    /// Join a thread by index.
    pub fn join(i: usize) -> Stmt {
        Stmt::Join(i)
    }

    /// Fluent program builder.
    pub struct ProgramBuilder {
        prog: Program,
    }

    impl ProgramBuilder {
        /// Starts a program with the default 8-bit width.
        pub fn new(name: &str) -> ProgramBuilder {
            ProgramBuilder {
                prog: Program {
                    name: name.to_string(),
                    word_width: 8,
                    shared: Vec::new(),
                    mutexes: Vec::new(),
                    threads: vec![Thread {
                        name: "main".to_string(),
                        body: Vec::new(),
                    }],
                },
            }
        }

        /// Sets the integer width.
        pub fn width(mut self, w: u32) -> Self {
            self.prog.word_width = w;
            self
        }

        /// Declares a shared variable.
        pub fn shared(mut self, name: &str, init: u64) -> Self {
            self.prog.shared.push((name.to_string(), init));
            self
        }

        /// Declares a mutex.
        pub fn mutex(mut self, name: &str) -> Self {
            self.prog.mutexes.push(name.to_string());
            self
        }

        /// Adds a worker thread, returning its index for `spawn`/`join`.
        pub fn thread(mut self, name: &str, body: Vec<Stmt>) -> Self {
            self.prog.threads.push(Thread {
                name: name.to_string(),
                body,
            });
            self
        }

        /// Sets the main thread's body. If it contains no `Spawn`, spawns of
        /// all worker threads are prepended and joins appended automatically
        /// (the common benchmark shape).
        pub fn main(mut self, body: Vec<Stmt>) -> Self {
            self.prog.threads[0].body = body;
            self
        }

        /// Finishes, auto-inserting spawn/join if `main` never spawns.
        pub fn build(mut self) -> Program {
            let has_spawn = self.prog.threads[0]
                .body
                .iter()
                .any(|s| matches!(s, Stmt::Spawn(_)));
            if !has_spawn && self.prog.threads.len() > 1 {
                let n = self.prog.threads.len();
                let mut body: Vec<Stmt> = (1..n).map(Stmt::Spawn).collect();
                let old = std::mem::take(&mut self.prog.threads[0].body);
                body.extend((1..n).map(Stmt::Join));
                body.extend(old);
                self.prog.threads[0].body = body;
            }
            self.prog
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn two_thread_prog() -> Program {
        ProgramBuilder::new("example")
            .shared("x", 0)
            .shared("y", 0)
            .thread(
                "t1",
                vec![assign("x", add(v("y"), c(1))), assign("m", v("y"))],
            )
            .thread(
                "t2",
                vec![assign("y", add(v("x"), c(1))), assign("n", v("x"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("m"), c(0)), eq(v("n"), c(0))))),
            ])
            .build()
    }

    #[test]
    fn validates_ok() {
        assert_eq!(two_thread_prog().validate(), Ok(()));
    }

    #[test]
    fn shared_index_lookup() {
        let p = two_thread_prog();
        assert_eq!(p.shared_index("x"), Some(0));
        assert_eq!(p.shared_index("y"), Some(1));
        assert_eq!(p.shared_index("m"), None);
    }

    #[test]
    fn bad_thread_ref_rejected() {
        let p = ProgramBuilder::new("bad").main(vec![spawn(3)]).build();
        assert_eq!(p.validate(), Err(ValidationError::BadThreadRef(3)));
    }

    #[test]
    fn main_self_spawn_rejected() {
        let p = ProgramBuilder::new("bad")
            .main(vec![Stmt::Spawn(0)])
            .build();
        assert_eq!(p.validate(), Err(ValidationError::MainThreadRef));
    }

    #[test]
    fn unknown_mutex_rejected() {
        let p = ProgramBuilder::new("bad")
            .thread("t", vec![lock("m")])
            .build();
        assert_eq!(
            p.validate(),
            Err(ValidationError::UnknownMutex("m".to_string()))
        );
    }

    #[test]
    fn duplicate_shared_rejected() {
        let p = ProgramBuilder::new("bad")
            .shared("x", 0)
            .shared("x", 1)
            .build();
        assert_eq!(
            p.validate(),
            Err(ValidationError::DuplicateShared("x".to_string()))
        );
    }

    #[test]
    fn auto_spawn_join_wrapping() {
        let p = two_thread_prog();
        // main explicitly spawns, so nothing is auto-inserted.
        assert_eq!(
            p.threads[0]
                .body
                .iter()
                .filter(|s| matches!(s, Stmt::Spawn(_)))
                .count(),
            2
        );
        let q = ProgramBuilder::new("auto")
            .shared("x", 0)
            .thread("t1", vec![assign("x", c(1))])
            .main(vec![assert_(eq(v("x"), c(1)))])
            .build();
        assert!(matches!(q.threads[0].body[0], Stmt::Spawn(1)));
        assert!(matches!(q.threads[0].body[1], Stmt::Join(1)));
    }

    #[test]
    fn double_lock_rejected() {
        let p = ProgramBuilder::new("bad")
            .mutex("m")
            .thread("t", vec![lock("m"), lock("m"), unlock("m")])
            .build();
        assert_eq!(
            p.validate(),
            Err(ValidationError::DoubleLock("m".to_string()))
        );
    }

    #[test]
    fn conditional_relock_is_not_flagged() {
        // The second lock is only reached when the first never ran: the
        // mutex is not held on *every* path, so the lint must stay quiet.
        let p = ProgramBuilder::new("ok")
            .mutex("m")
            .shared("x", 0)
            .thread(
                "t",
                vec![
                    when(eq(v("x"), c(0)), vec![lock("m")]),
                    when(ne(v("x"), c(0)), vec![lock("m")]),
                    unlock("m"),
                ],
            )
            .build();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn unlock_without_lock_rejected() {
        let p = ProgramBuilder::new("bad")
            .mutex("m")
            .thread("t", vec![unlock("m")])
            .build();
        assert_eq!(
            p.validate(),
            Err(ValidationError::UnlockWithoutLock("m".to_string()))
        );
    }

    #[test]
    fn conditional_unlock_is_not_flagged() {
        let p = ProgramBuilder::new("ok")
            .mutex("m")
            .shared("x", 0)
            .thread(
                "t",
                vec![
                    when(eq(v("x"), c(0)), vec![lock("m")]),
                    when(eq(v("x"), c(0)), vec![unlock("m")]),
                ],
            )
            .build();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn join_without_spawn_rejected() {
        // Thread 2 is joined but nobody ever spawns it: the specific lint
        // must fire, not the generic spawn-count error. (An explicit spawn
        // of thread 1 keeps the builder from auto-inserting spawns.)
        let p = ProgramBuilder::new("bad")
            .shared("x", 0)
            .thread("t1", vec![assign("x", c(1))])
            .thread("t2", vec![assign("x", c(2))])
            .main(vec![spawn(1), join(1), join(2)])
            .build();
        assert_eq!(p.validate(), Err(ValidationError::JoinWithoutSpawn(2)));
    }

    #[test]
    fn unbalanced_atomic_rejected() {
        let open = ProgramBuilder::new("bad-open")
            .shared("x", 0)
            .thread("t", vec![Stmt::AtomicBegin, assign("x", c(1))])
            .build();
        assert_eq!(open.validate(), Err(ValidationError::UnbalancedAtomic));
        let close = ProgramBuilder::new("bad-close")
            .shared("x", 0)
            .thread("t", vec![assign("x", c(1)), Stmt::AtomicEnd])
            .build();
        assert_eq!(close.validate(), Err(ValidationError::UnbalancedAtomic));
        let branch = ProgramBuilder::new("bad-branch")
            .shared("x", 0)
            .thread(
                "t",
                vec![
                    when(eq(v("x"), c(0)), vec![Stmt::AtomicBegin]),
                    Stmt::AtomicEnd,
                ],
            )
            .build();
        assert_eq!(branch.validate(), Err(ValidationError::UnbalancedAtomic));
    }

    #[test]
    fn balanced_atomic_accepted() {
        let p = ProgramBuilder::new("ok")
            .shared("x", 0)
            .thread("t", atomic(vec![assign("x", add(v("x"), c(1)))]))
            .build();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn has_loops_detection() {
        let mut p = two_thread_prog();
        assert!(!p.has_loops());
        p.threads[1].body.push(while_(
            lt(v("x"), c(3)),
            vec![assign("x", add(v("x"), c(1)))],
        ));
        assert!(p.has_loops());
    }
}
