//! # zpre-prog — concurrent program IR, BMC front-end, reference checkers
//!
//! The program-side substrate of the `zpre` stack:
//!
//! - [`ast`] — a concurrent mini-language covering what the SV-COMP
//!   *ConcurrencySafety* programs exercise (threads, mutexes, atomics,
//!   fences, bounded loops, nondeterminism, assume/assert), plus a builder
//!   DSL for the workload generators;
//! - [`unroll`] — bounded loop unrolling with unwinding assumptions (the
//!   BMC step of §5);
//! - [`ssa`] — SSA conversion by symbolic execution: global events with
//!   guards and SSA value variables, the input to the partial-order encoder;
//! - [`flat`] + [`interp`] — lowering to shared-access-granular
//!   micro-instructions and an exhaustive explicit-state SC checker, the
//!   *oracle* the SMT pipeline is cross-validated against;
//! - [`wmm`] — operational TSO/PSO store-buffer checkers for litmus-level
//!   cross-validation of the weak-memory encodings;
//! - [`replay`] — schedule-driven witness replay on a buffered store
//!   machine, the independent oracle behind certified `Unsafe` verdicts;
//! - [`pretty`] — C-like pretty-printing.

#![warn(missing_docs)]

pub mod ast;
pub mod flat;
pub mod interp;
pub mod parse;
pub mod pretty;
pub mod replay;
pub mod ssa;
pub mod trace;
pub mod unroll;
pub mod wmm;

pub use ast::{build, BoolExpr, IntExpr, Program, Stmt, Thread};
pub use flat::{flatten, FlatProgram, Instr};
pub use interp::{check_sc, Limits, Outcome};
pub use parse::{parse_program, ParseError};
pub use replay::{replay, ReplayError, ReplayOp, ReplayViolation, ScheduleStep};
pub use ssa::{to_ssa, AtomicBlock, Event, EventKind, SsaProgram};
pub use trace::{parse_program_traced, to_ssa_traced, unroll_program_traced};
pub use unroll::{
    sweep_marker_remaining, unroll_program, unroll_program_sweep, SweepUnrolled,
    SWEEP_MARKER_PREFIX,
};
pub use wmm::{check_wmm, MemoryModel};
