//! SSA conversion: symbolic execution of a loop-free program into events,
//! data-path constraints, and guarded assertions.
//!
//! This is the front-end half of the paper's pipeline (the role of the
//! modified CBMC): each syntactic shared-variable access becomes a *global
//! event* carrying a fresh SSA value variable and a *guard* (its path
//! condition); local variables are resolved to terms directly, with `ite`
//! merges at join points. Shared-variable initializers become the main
//! thread's first write events, exactly as in the paper's running example
//! (Fig. 2: `x₁ := 0`, `y₁ := 0` are events of `main`).
//!
//! The produced [`SsaProgram`] is memory-model independent; the encoder
//! derives Φ_po / Φ_rf / Φ_ws / Φ_fr from it per memory model.

use crate::ast::{BoolExpr, IntExpr, Program, Stmt};
use std::collections::{BTreeSet, HashMap};
use zpre_bv::{TermId, TermStore};

/// What a global event does.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// Read of a shared variable; `value` is the fresh SSA variable the
    /// read binds (constrained only through the read-from relation).
    Read {
        /// Shared-variable index.
        var: usize,
        /// SSA value term (a fresh bit-vector variable).
        value: TermId,
    },
    /// Write of a shared variable; `value` is the fresh SSA variable
    /// equated with the right-hand side in Φ_ssa.
    Write {
        /// Shared-variable index.
        var: usize,
        /// SSA value term.
        value: TermId,
    },
    /// Mutex acquisition (fence-like).
    Lock {
        /// Mutex index.
        mutex: usize,
    },
    /// Mutex release (fence-like).
    Unlock {
        /// Mutex index.
        mutex: usize,
    },
    /// Full fence.
    Fence,
    /// Start of an atomic section.
    AtomicBegin {
        /// Index into [`SsaProgram::atomic_blocks`].
        block: usize,
    },
    /// End of an atomic section.
    AtomicEnd {
        /// Index into [`SsaProgram::atomic_blocks`].
        block: usize,
    },
    /// Thread creation (synchronizes: everything before it happens before
    /// everything in the child).
    Spawn {
        /// Spawned thread index.
        child: usize,
    },
    /// Thread join (child's events happen before everything after).
    Join {
        /// Joined thread index.
        child: usize,
    },
}

impl EventKind {
    /// The accessed shared variable, for read/write events.
    pub fn var(&self) -> Option<usize> {
        match self {
            EventKind::Read { var, .. } | EventKind::Write { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// `true` for write events.
    pub fn is_write(&self) -> bool {
        matches!(self, EventKind::Write { .. })
    }

    /// `true` for read events.
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::Read { .. })
    }
}

/// A global event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global event id (index into [`SsaProgram::events`]).
    pub id: usize,
    /// Owning thread.
    pub thread: usize,
    /// Intra-thread position (the paper's `r_i`/`w_i` in variable names).
    pub pos: usize,
    /// Guard (path condition) term.
    pub guard: TermId,
    /// Payload.
    pub kind: EventKind,
}

/// An atomic section with the shared variables it touches.
#[derive(Clone, Debug)]
pub struct AtomicBlock {
    /// Owning thread.
    pub thread: usize,
    /// Event id of the `AtomicBegin`.
    pub begin: usize,
    /// Event id of the `AtomicEnd`.
    pub end: usize,
    /// Shared variables accessed inside.
    pub vars: BTreeSet<usize>,
}

/// The SSA form of a program.
pub struct SsaProgram {
    /// Term arena (data path).
    pub store: TermStore,
    /// Integer width.
    pub word_width: u32,
    /// Shared-variable names.
    pub shared_names: Vec<String>,
    /// Thread names.
    pub thread_names: Vec<String>,
    /// All global events, in creation order (per-thread program order is
    /// the order of ascending `pos` within one thread).
    pub events: Vec<Event>,
    /// Φ_ssa conjuncts: write-value definitions and assumption constraints.
    pub constraints: Vec<TermId>,
    /// Guarded safety assertions `(guard, cond)`; the error condition is
    /// `⋁ guard ∧ ¬cond`.
    pub assertions: Vec<(TermId, TermId)>,
    /// Atomic sections.
    pub atomic_blocks: Vec<AtomicBlock>,
    /// Names of nondeterministic inputs (bit-vector variables in `store`).
    pub nondet_names: Vec<String>,
}

impl SsaProgram {
    /// Events of one thread, in program order.
    pub fn thread_events(&self, thread: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.thread == thread)
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.thread_names.len()
    }
}

/// Converts a loop-free program to SSA. Panics on loops.
pub fn to_ssa(prog: &Program) -> SsaProgram {
    assert!(!prog.has_loops(), "to_ssa requires an unrolled program");
    prog.validate().expect("program must validate");
    let mut cx = Cx {
        prog,
        ts: TermStore::new(),
        events: Vec::new(),
        constraints: Vec::new(),
        assertions: Vec::new(),
        atomic_blocks: Vec::new(),
        nondet_names: Vec::new(),
        pos: vec![0; prog.threads.len()],
    };

    // Main thread first: shared initializers as its first write events.
    let tru = cx.ts.tru();
    for (i, (name, init)) in prog.shared.iter().enumerate() {
        let val = cx.ts.bv_const(*init, prog.word_width);
        let wvar = cx.fresh_value(name, 0);
        let def = cx.ts.eq(wvar, val);
        cx.constraints.push(def);
        cx.push_event(
            0,
            tru,
            EventKind::Write {
                var: i,
                value: wvar,
            },
        );
    }
    for (tid, thread) in prog.threads.iter().enumerate() {
        let mut ex = Exec {
            cx: &mut cx,
            thread: tid,
            guard: tru,
            locals: HashMap::new(),
            open_atomics: Vec::new(),
        };
        ex.stmts(&thread.body);
        assert!(
            ex.open_atomics.is_empty(),
            "unclosed atomic section in thread {tid}"
        );
    }

    SsaProgram {
        store: cx.ts,
        word_width: prog.word_width,
        shared_names: prog.shared.iter().map(|(n, _)| n.clone()).collect(),
        thread_names: prog.threads.iter().map(|t| t.name.clone()).collect(),
        events: cx.events,
        constraints: cx.constraints,
        assertions: cx.assertions,
        atomic_blocks: cx.atomic_blocks,
        nondet_names: cx.nondet_names,
    }
}

struct Cx<'a> {
    prog: &'a Program,
    ts: TermStore,
    events: Vec<Event>,
    constraints: Vec<TermId>,
    assertions: Vec<(TermId, TermId)>,
    atomic_blocks: Vec<AtomicBlock>,
    nondet_names: Vec<String>,
    pos: Vec<usize>,
}

impl Cx<'_> {
    fn push_event(&mut self, thread: usize, guard: TermId, kind: EventKind) -> usize {
        let id = self.events.len();
        let pos = self.pos[thread];
        self.pos[thread] += 1;
        self.events.push(Event {
            id,
            thread,
            pos,
            guard,
            kind,
        });
        id
    }

    fn fresh_value(&mut self, shared_name: &str, hint: usize) -> TermId {
        let n = self.events.len() + hint;
        self.ts
            .bv_var(format!("{shared_name}!{n}"), self.prog.word_width)
    }
}

struct Exec<'a, 'b> {
    cx: &'a mut Cx<'b>,
    thread: usize,
    guard: TermId,
    locals: HashMap<String, TermId>,
    open_atomics: Vec<usize>,
}

impl Exec<'_, '_> {
    fn note_atomic_access(&mut self, var: usize) {
        for &b in &self.open_atomics {
            self.cx.atomic_blocks[b].vars.insert(var);
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(x, e) => {
                let rhs = self.int(e);
                match self.cx.prog.shared_index(x) {
                    Some(var) => {
                        let wvar = self.cx.fresh_value(x, 0);
                        let def = self.cx.ts.eq(wvar, rhs);
                        self.cx.constraints.push(def);
                        self.cx.push_event(
                            self.thread,
                            self.guard,
                            EventKind::Write { var, value: wvar },
                        );
                        self.note_atomic_access(var);
                    }
                    None => {
                        self.locals.insert(x.clone(), rhs);
                    }
                }
            }
            Stmt::If(c, t, e) => {
                // Condition reads happen under the *current* guard.
                let cond = self.bool(c);
                let saved_guard = self.guard;
                let saved_locals = self.locals.clone();

                self.guard = self.cx.ts.and(saved_guard, cond);
                self.stmts(t);
                let then_locals = std::mem::replace(&mut self.locals, saved_locals);

                let ncond = self.cx.ts.not(cond);
                self.guard = self.cx.ts.and(saved_guard, ncond);
                self.stmts(e);
                let else_locals = std::mem::take(&mut self.locals);

                // φ-merge.
                let mut merged = HashMap::new();
                let zero = self.cx.ts.bv_const(0, self.cx.prog.word_width);
                let keys: BTreeSet<&String> =
                    then_locals.keys().chain(else_locals.keys()).collect();
                for k in keys {
                    let tv = *then_locals.get(k).unwrap_or(&zero);
                    let ev = *else_locals.get(k).unwrap_or(&zero);
                    merged.insert(k.clone(), self.cx.ts.bv_ite(cond, tv, ev));
                }
                self.locals = merged;
                self.guard = saved_guard;
            }
            Stmt::While(..) => unreachable!("loop survived unrolling"),
            Stmt::Assert(c) => {
                let cond = self.bool(c);
                self.cx.assertions.push((self.guard, cond));
            }
            Stmt::Assume(c) => {
                let cond = self.bool(c);
                let g = self.guard;
                let imp = self.cx.ts.implies(g, cond);
                self.cx.constraints.push(imp);
            }
            Stmt::Lock(m) => {
                let mutex = self.cx.prog.mutex_index(m).expect("validated");
                self.cx
                    .push_event(self.thread, self.guard, EventKind::Lock { mutex });
            }
            Stmt::Unlock(m) => {
                let mutex = self.cx.prog.mutex_index(m).expect("validated");
                self.cx
                    .push_event(self.thread, self.guard, EventKind::Unlock { mutex });
            }
            Stmt::Fence => {
                self.cx
                    .push_event(self.thread, self.guard, EventKind::Fence);
            }
            Stmt::AtomicBegin => {
                let block = self.cx.atomic_blocks.len();
                let id =
                    self.cx
                        .push_event(self.thread, self.guard, EventKind::AtomicBegin { block });
                self.cx.atomic_blocks.push(AtomicBlock {
                    thread: self.thread,
                    begin: id,
                    end: usize::MAX,
                    vars: BTreeSet::new(),
                });
                self.open_atomics.push(block);
            }
            Stmt::AtomicEnd => {
                let block = self
                    .open_atomics
                    .pop()
                    .expect("AtomicEnd without matching AtomicBegin");
                let id =
                    self.cx
                        .push_event(self.thread, self.guard, EventKind::AtomicEnd { block });
                self.cx.atomic_blocks[block].end = id;
            }
            Stmt::Spawn(i) => {
                self.cx
                    .push_event(self.thread, self.guard, EventKind::Spawn { child: *i });
            }
            Stmt::Join(i) => {
                self.cx
                    .push_event(self.thread, self.guard, EventKind::Join { child: *i });
            }
            Stmt::Skip => {}
        }
    }

    fn int(&mut self, e: &IntExpr) -> TermId {
        let w = self.cx.prog.word_width;
        match e {
            IntExpr::Const(v) => self.cx.ts.bv_const(*v, w),
            IntExpr::Var(x) => match self.cx.prog.shared_index(x) {
                Some(var) => {
                    let name = self.cx.prog.shared[var].0.clone();
                    let rvar = self.cx.fresh_value(&name, 0);
                    self.cx.push_event(
                        self.thread,
                        self.guard,
                        EventKind::Read { var, value: rvar },
                    );
                    self.note_atomic_access(var);
                    rvar
                }
                None => {
                    let zero = self.cx.ts.bv_const(0, w);
                    *self.locals.get(x).unwrap_or(&zero)
                }
            },
            IntExpr::Nondet(name) => {
                let full = format!("nd!{name}");
                self.cx.nondet_names.push(full.clone());
                self.cx.ts.bv_var(full, w)
            }
            IntExpr::Add(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_add(x, y)
            }
            IntExpr::Sub(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_sub(x, y)
            }
            IntExpr::Mul(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_mul(x, y)
            }
            IntExpr::BitAnd(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_and(x, y)
            }
            IntExpr::BitOr(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_or(x, y)
            }
            IntExpr::BitXor(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_xor(x, y)
            }
            IntExpr::Shl(a, by) => {
                let x = self.int(a);
                self.cx.ts.bv_shl_const(x, *by)
            }
            IntExpr::Shr(a, by) => {
                let x = self.int(a);
                self.cx.ts.bv_lshr_const(x, *by)
            }
            IntExpr::Ite(c, a, b) => {
                let lc = self.bool(c);
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.bv_ite(lc, x, y)
            }
        }
    }

    fn bool(&mut self, e: &BoolExpr) -> TermId {
        match e {
            BoolExpr::Const(v) => self.cx.ts.bool_const(*v),
            BoolExpr::Nondet(name) => {
                let full = format!("ndb!{name}");
                self.cx.ts.bool_var(full)
            }
            BoolExpr::Not(a) => {
                let x = self.bool(a);
                self.cx.ts.not(x)
            }
            BoolExpr::And(a, b) => {
                let (x, y) = (self.bool(a), self.bool(b));
                self.cx.ts.and(x, y)
            }
            BoolExpr::Or(a, b) => {
                let (x, y) = (self.bool(a), self.bool(b));
                self.cx.ts.or(x, y)
            }
            BoolExpr::Eq(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.eq(x, y)
            }
            BoolExpr::Ne(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.neq(x, y)
            }
            BoolExpr::Lt(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.ult(x, y)
            }
            BoolExpr::Le(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.ule(x, y)
            }
            BoolExpr::Gt(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.ult(y, x)
            }
            BoolExpr::Ge(a, b) => {
                let (x, y) = (self.int(a), self.int(b));
                self.cx.ts.ule(y, x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    fn fig2() -> Program {
        ProgramBuilder::new("fig2")
            .shared("x", 0)
            .shared("y", 0)
            .shared("m", 0)
            .shared("n", 0)
            .thread(
                "t1",
                vec![assign("x", add(v("y"), c(1))), assign("m", v("y"))],
            )
            .thread(
                "t2",
                vec![assign("y", add(v("x"), c(1))), assign("n", v("x"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("m"), c(0)), eq(v("n"), c(0))))),
            ])
            .build()
    }

    #[test]
    fn init_writes_belong_to_main() {
        let ssa = to_ssa(&fig2());
        // Four shared variables → four init writes, thread 0, pos 0..4.
        for i in 0..4 {
            let e = &ssa.events[i];
            assert_eq!(e.thread, 0);
            assert_eq!(e.pos, i);
            assert!(e.kind.is_write());
        }
    }

    #[test]
    fn event_counts_match_fig2() {
        let ssa = to_ssa(&fig2());
        // t1: read y, write x, read y, write m  = 4 events.
        let t1: Vec<_> = ssa.thread_events(1).collect();
        assert_eq!(t1.len(), 4);
        assert!(t1[0].kind.is_read());
        assert!(t1[1].kind.is_write());
        assert!(t1[2].kind.is_read());
        assert!(t1[3].kind.is_write());
        // main: 4 init writes + 2 spawns + 2 joins + 2 assert reads = 10.
        let main: Vec<_> = ssa.thread_events(0).collect();
        assert_eq!(main.len(), 10);
        // Read events of the assertion come after the joins.
        assert!(matches!(main[4].kind, EventKind::Spawn { child: 1 }));
        assert!(matches!(main[7].kind, EventKind::Join { child: 2 }));
        assert!(main[8].kind.is_read());
        assert!(main[9].kind.is_read());
    }

    #[test]
    fn assertion_guard_is_true_at_top_level() {
        let ssa = to_ssa(&fig2());
        assert_eq!(ssa.assertions.len(), 1);
        let (g, _) = ssa.assertions[0];
        let mut ts = ssa.store.clone();
        assert_eq!(g, ts.tru());
    }

    #[test]
    fn branch_guards_attach_to_events() {
        let p = ProgramBuilder::new("b")
            .shared("x", 0)
            .shared("y", 0)
            .thread(
                "t",
                vec![if_(
                    eq(v("x"), c(0)),
                    vec![assign("y", c(1))],
                    vec![assign("y", c(2))],
                )],
            )
            .build();
        let ssa = to_ssa(&p);
        let t1: Vec<_> = ssa.thread_events(1).collect();
        // read x (guard true), write y (guard c), write y (guard ¬c).
        assert_eq!(t1.len(), 3);
        let mut ts = ssa.store.clone();
        let tru = ts.tru();
        assert_eq!(t1[0].guard, tru);
        assert_ne!(t1[1].guard, tru);
        assert_ne!(t1[2].guard, tru);
        assert_ne!(t1[1].guard, t1[2].guard);
    }

    #[test]
    fn local_merge_via_ite() {
        let p = ProgramBuilder::new("m")
            .shared("x", 0)
            .thread(
                "t",
                vec![
                    if_(
                        eq(v("x"), c(0)),
                        vec![assign("a", c(1))],
                        vec![assign("a", c(2))],
                    ),
                    assign("x", v("a")),
                ],
            )
            .build();
        let ssa = to_ssa(&p);
        // The final write's defining constraint references an ite term; we
        // simply check conversion succeeded and produced a write with the
        // expected shape (1 read + 1 write in t).
        let t1: Vec<_> = ssa.thread_events(1).collect();
        assert_eq!(t1.len(), 2);
        assert!(t1[1].kind.is_write());
    }

    #[test]
    fn atomic_blocks_record_vars() {
        let p = ProgramBuilder::new("a")
            .shared("x", 0)
            .shared("y", 0)
            .thread("t", atomic(vec![assign("x", c(1)), assign("r", v("y"))]))
            .build();
        let ssa = to_ssa(&p);
        assert_eq!(ssa.atomic_blocks.len(), 1);
        let b = &ssa.atomic_blocks[0];
        assert_eq!(b.thread, 1);
        assert!(b.end > b.begin);
        assert_eq!(b.vars, BTreeSet::from([0, 1]));
    }

    #[test]
    fn assumes_become_constraints() {
        let p = ProgramBuilder::new("as")
            .shared("x", 0)
            .main(vec![assume(lt(v("x"), c(3)))])
            .build();
        let ssa = to_ssa(&p);
        // 1 init def + 1 assumption.
        assert_eq!(ssa.constraints.len(), 2);
    }

    #[test]
    fn nondets_are_recorded() {
        let p = ProgramBuilder::new("nd")
            .shared("x", 0)
            .main(vec![assign("x", nondet("k"))])
            .build();
        let ssa = to_ssa(&p);
        assert_eq!(ssa.nondet_names, vec!["nd!k".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unrolled")]
    fn rejects_loops() {
        let p = ProgramBuilder::new("l")
            .shared("x", 0)
            .main(vec![while_(
                lt(v("x"), c(3)),
                vec![assign("x", add(v("x"), c(1)))],
            )])
            .build();
        let _ = to_ssa(&p);
    }
}
