//! Traced front-end entry points: the same parse / unroll / SSA passes,
//! wrapped in `zpre-obs` phase spans when a [`Recorder`] is supplied.
//!
//! Callers that don't trace pass `None` and pay nothing; the verifier and
//! CLI pass their recorder so front-end time shows up in the phase profile
//! alongside encode/solve.

use zpre_obs::{Phase, Recorder};

use crate::ast::Program;
use crate::parse::{parse_program, ParseError};
use crate::ssa::{to_ssa, SsaProgram};
use crate::unroll::unroll_program;

/// [`parse_program`] under a `parse` phase span.
pub fn parse_program_traced(src: &str, rec: Option<&Recorder>) -> Result<Program, ParseError> {
    let _span = rec.map(|r| r.span(Phase::Parse));
    parse_program(src)
}

/// [`unroll_program`] under an `unroll` phase span.
pub fn unroll_program_traced(prog: &Program, bound: u32, rec: Option<&Recorder>) -> Program {
    let _span = rec.map(|r| r.span(Phase::Unroll));
    unroll_program(prog, bound)
}

/// [`to_ssa`] under an `ssa` phase span.
pub fn to_ssa_traced(prog: &Program, rec: Option<&Recorder>) -> SsaProgram {
    let _span = rec.map(|r| r.span(Phase::Ssa));
    to_ssa(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "shared int x = 0;\n\
        thread main { spawn(t0); join(t0); assert(x == 1); }\n\
        thread t0 { x = 1; }\n";

    #[test]
    fn traced_passes_match_untraced() {
        let rec = Recorder::default();
        let p1 = parse_program_traced(SRC, Some(&rec)).expect("parse");
        let p2 = parse_program(SRC).expect("parse");
        let u1 = unroll_program_traced(&p1, 2, Some(&rec));
        let u2 = unroll_program(&p2, 2);
        let s1 = to_ssa_traced(&u1, Some(&rec));
        let s2 = to_ssa(&u2);
        assert_eq!(s1.events.len(), s2.events.len());
        let snap = rec.snapshot();
        let phases: Vec<Phase> = snap.spans.iter().map(|s| s.phase).collect();
        assert_eq!(phases, vec![Phase::Parse, Phase::Unroll, Phase::Ssa]);
        assert!(snap.spans.iter().all(|s| s.closed && s.depth == 0));
    }

    #[test]
    fn none_recorder_is_accepted() {
        let p = parse_program_traced(SRC, None).expect("parse");
        let u = unroll_program_traced(&p, 1, None);
        let _ = to_ssa_traced(&u, None);
    }
}
