//! Explicit-state exploration under weak memory models (TSO, PSO).
//!
//! Operational store-buffer semantics:
//!
//! - **TSO** (x86-style): one FIFO store buffer per thread. A store enqueues
//!   into the buffer; a load reads the newest matching entry of its own
//!   buffer (store forwarding) or memory; a nondeterministic *flush* step
//!   commits the oldest entry of any thread's buffer to memory. Fences,
//!   lock operations and atomic-section boundaries drain the executing
//!   thread's buffer (they are only enabled when it is empty).
//! - **PSO** (SPARC partial store order): one FIFO buffer *per thread and
//!   variable*, so stores to different variables commit in any order.
//!
//! A thread counts as finished (for `join`) only when its code is done
//! *and* its buffers have drained, matching the synchronizing semantics of
//! `pthread_join`.
//!
//! Note: these operational models include store-to-load forwarding; the
//! axiomatic po-relaxation encoding of the paper agrees with them on the
//! standard litmus families (SB, MP, LB, S, R, 2+2W, IRIW) used in the
//! test-suite, which is the cross-validation contract.

use crate::flat::{FlatProgram, Instr};
use crate::interp::{eval_bool, eval_int, Limits, Outcome};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Memory model selector (shared with the encoder).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemoryModel {
    /// Sequential consistency.
    Sc,
    /// Total store order.
    Tso,
    /// Partial store order.
    Pso,
}

impl MemoryModel {
    /// All three models, in the paper's order.
    pub const ALL: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

    /// Lower-case name as used in file names and tables.
    pub fn name(self) -> &'static str {
        match self {
            MemoryModel::Sc => "sc",
            MemoryModel::Tso => "tso",
            MemoryModel::Pso => "pso",
        }
    }
}

impl std::fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name().to_uppercase())
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct WState {
    pcs: Vec<usize>,
    locals: Vec<BTreeMap<String, u64>>,
    shared: Vec<u64>,
    mutex: Vec<Option<u8>>,
    started: Vec<bool>,
    atomic: Option<(u8, u32)>,
    /// Per-thread, per-variable FIFO buffers. Under TSO the per-variable
    /// split still encodes a single FIFO because an extra `fifo_order`
    /// sequence tracks global store order per thread.
    buffers: Vec<BTreeMap<usize, VecDeque<u64>>>,
    /// TSO only: per-thread queue of variable ids in store order; flushes
    /// must follow it. Empty and unused under PSO.
    fifo_order: Vec<VecDeque<usize>>,
}

/// Explores all interleavings (including buffer flush steps) of `fp` under
/// the given weak memory model. Use [`crate::interp::check_sc`] for SC.
pub fn check_wmm(fp: &FlatProgram, mm: MemoryModel, limits: Limits) -> Outcome {
    assert!(
        mm != MemoryModel::Sc,
        "use check_sc for sequential consistency"
    );
    let nt = fp.threads.len();
    let init = WState {
        pcs: vec![0; nt],
        locals: vec![BTreeMap::new(); nt],
        shared: fp.shared_init.clone(),
        mutex: vec![None; fp.num_mutexes],
        started: {
            let mut s = vec![false; nt];
            s[0] = true;
            s
        },
        atomic: None,
        buffers: vec![BTreeMap::new(); nt],
        fifo_order: vec![VecDeque::new(); nt],
    };
    let mut visited: HashSet<WState> = HashSet::new();
    let mut stack = vec![init.clone()];
    visited.insert(init);
    while let Some(st) = stack.pop() {
        if visited.len() > limits.max_states {
            return Outcome::ResourceLimit;
        }
        // 1. Flush transitions.
        for t in 0..nt {
            if let Some((h, _)) = st.atomic {
                if h as usize != t {
                    continue; // buffers of other threads are frozen
                }
            }
            for s in flush_successors(&st, t, mm) {
                if visited.insert(s.clone()) {
                    stack.push(s);
                }
            }
        }
        // 2. Instruction transitions.
        for t in 0..nt {
            if !enabled(fp, &st, t, mm) {
                continue;
            }
            match step(fp, &st, t, mm, limits) {
                StepResult::Violation => return Outcome::Unsafe,
                StepResult::LimitExceeded => return Outcome::ResourceLimit,
                StepResult::Successors(succs) => {
                    for s in succs {
                        if visited.insert(s.clone()) {
                            stack.push(s);
                        }
                    }
                }
            }
        }
    }
    Outcome::Safe
}

fn buffer_empty(st: &WState, t: usize) -> bool {
    st.buffers[t].values().all(|q| q.is_empty())
}

fn flush_successors(st: &WState, t: usize, mm: MemoryModel) -> Vec<WState> {
    match mm {
        MemoryModel::Tso => {
            let Some(&var) = st.fifo_order[t].front() else {
                return Vec::new();
            };
            let mut s = st.clone();
            s.fifo_order[t].pop_front();
            let q = s.buffers[t]
                .get_mut(&var)
                .expect("fifo order tracks buffers");
            let val = q.pop_front().expect("fifo order tracks buffers");
            if q.is_empty() {
                s.buffers[t].remove(&var);
            }
            s.shared[var] = val;
            vec![s]
        }
        MemoryModel::Pso => {
            // Any variable's oldest entry may commit.
            st.buffers[t]
                .keys()
                .copied()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|var| {
                    let mut s = st.clone();
                    let q = s.buffers[t].get_mut(&var).expect("key exists");
                    let val = q.pop_front().expect("non-empty queue");
                    if q.is_empty() {
                        s.buffers[t].remove(&var);
                    }
                    s.shared[var] = val;
                    s
                })
                .collect()
        }
        MemoryModel::Sc => unreachable!(),
    }
}

fn finished(fp: &FlatProgram, st: &WState, t: usize) -> bool {
    st.started[t] && st.pcs[t] >= fp.threads[t].code.len() && buffer_empty(st, t)
}

fn enabled(fp: &FlatProgram, st: &WState, t: usize, _mm: MemoryModel) -> bool {
    if !st.started[t] || st.pcs[t] >= fp.threads[t].code.len() {
        return false;
    }
    if let Some((holder, _)) = st.atomic {
        if holder as usize != t {
            return false;
        }
    }
    match &fp.threads[t].code[st.pcs[t]] {
        // Synchronizing operations drain the buffer first. Spawn and join
        // are fences too (pthread create/join synchronize memory).
        Instr::Fence | Instr::AtomicBegin | Instr::AtomicEnd | Instr::Spawn(_) => {
            buffer_empty(st, t)
        }
        Instr::Lock(m) => buffer_empty(st, t) && st.mutex[*m].is_none(),
        Instr::Unlock(_) => buffer_empty(st, t),
        Instr::Join(i) => buffer_empty(st, t) && finished(fp, st, *i),
        _ => true,
    }
}

enum StepResult {
    Successors(Vec<WState>),
    Violation,
    LimitExceeded,
}

fn step(fp: &FlatProgram, st: &WState, t: usize, mm: MemoryModel, limits: Limits) -> StepResult {
    let w = fp.word_width;
    let instr = &fp.threads[t].code[st.pcs[t]];
    let mut next = st.clone();
    next.pcs[t] += 1;
    match instr {
        Instr::LoadShared { dst, var } => {
            // Store forwarding: newest buffered value for `var`, else memory.
            let val = st.buffers[t]
                .get(var)
                .and_then(|q| q.back().copied())
                .unwrap_or(st.shared[*var]);
            next.locals[t].insert(dst.clone(), val);
        }
        Instr::StoreShared { var, val } => {
            let v = eval_int(val, &st.locals[t], w);
            next.buffers[t].entry(*var).or_default().push_back(v);
            if mm == MemoryModel::Tso {
                next.fifo_order[t].push_back(*var);
            }
        }
        Instr::AssignLocal { dst, val } => {
            let v = eval_int(val, &st.locals[t], w);
            next.locals[t].insert(dst.clone(), v);
        }
        Instr::HavocInt { dst } => {
            if w > limits.max_havoc_width {
                return StepResult::LimitExceeded;
            }
            return StepResult::Successors(
                (0..(1u64 << w))
                    .map(|v| {
                        let mut s = next.clone();
                        s.locals[t].insert(dst.clone(), v);
                        s
                    })
                    .collect(),
            );
        }
        Instr::HavocBool { dst } => {
            return StepResult::Successors(
                (0..2u64)
                    .map(|v| {
                        let mut s = next.clone();
                        s.locals[t].insert(dst.clone(), v);
                        s
                    })
                    .collect(),
            );
        }
        Instr::JmpIfFalse { cond, target } => {
            if !eval_bool(cond, &st.locals[t], w) {
                next.pcs[t] = *target;
            }
        }
        Instr::Jmp { target } => next.pcs[t] = *target,
        Instr::Assert(cond) => {
            if !eval_bool(cond, &st.locals[t], w) {
                return StepResult::Violation;
            }
        }
        Instr::Assume(cond) => {
            if !eval_bool(cond, &st.locals[t], w) {
                return StepResult::Successors(Vec::new());
            }
        }
        Instr::Lock(m) => {
            debug_assert!(st.mutex[*m].is_none());
            next.mutex[*m] = Some(t as u8);
        }
        Instr::Unlock(m) => {
            if st.mutex[*m] != Some(t as u8) {
                return StepResult::Successors(Vec::new());
            }
            next.mutex[*m] = None;
        }
        Instr::Fence => {} // enabledness required an empty buffer
        Instr::AtomicBegin => {
            next.atomic = match st.atomic {
                None => Some((t as u8, 1)),
                Some((h, d)) => Some((h, d + 1)),
            };
        }
        Instr::AtomicEnd => {
            next.atomic = match st.atomic {
                Some((h, 1)) => {
                    debug_assert_eq!(h as usize, t);
                    None
                }
                Some((h, d)) => Some((h, d - 1)),
                None => None,
            };
        }
        Instr::Spawn(i) => next.started[*i] = true,
        Instr::Join(_) => {}
    }
    StepResult::Successors(vec![next])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::ast::Program;
    use crate::flat::flatten;
    use crate::unroll::unroll_program;

    fn check(p: &Program, mm: MemoryModel) -> Outcome {
        let u = unroll_program(p, 3);
        check_wmm(&flatten(&u), mm, Limits::default())
    }

    /// SB (store buffering): W x / R y || W y / R x. Both reads zero is
    /// possible under TSO and PSO, impossible under SC.
    fn sb(with_fences: bool) -> Program {
        let t1 = if with_fences {
            vec![assign("x", c(1)), fence(), assign("r1", v("y"))]
        } else {
            vec![assign("x", c(1)), assign("r1", v("y"))]
        };
        let t2 = if with_fences {
            vec![assign("y", c(1)), fence(), assign("r2", v("x"))]
        } else {
            vec![assign("y", c(1)), assign("r2", v("x"))]
        };
        ProgramBuilder::new("sb")
            .shared("x", 0)
            .shared("y", 0)
            .shared("r1", 0)
            .shared("r2", 0)
            .thread("t1", t1)
            .thread("t2", t2)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("r1"), c(0)), eq(v("r2"), c(0))))),
            ])
            .build()
    }

    #[test]
    fn sb_unsafe_under_tso_and_pso() {
        assert_eq!(check(&sb(false), MemoryModel::Tso), Outcome::Unsafe);
        assert_eq!(check(&sb(false), MemoryModel::Pso), Outcome::Unsafe);
    }

    #[test]
    fn sb_with_fences_safe_everywhere() {
        assert_eq!(check(&sb(true), MemoryModel::Tso), Outcome::Safe);
        assert_eq!(check(&sb(true), MemoryModel::Pso), Outcome::Safe);
    }

    /// MP (message passing): W data; W flag || R flag; R data.
    /// Safe under TSO (stores commit in order), unsafe under PSO.
    fn mp() -> Program {
        ProgramBuilder::new("mp")
            .shared("data", 0)
            .shared("flag", 0)
            .shared("seen", 0)
            .shared("val", 0)
            .thread(
                "producer",
                vec![assign("data", c(42)), assign("flag", c(1))],
            )
            .thread(
                "consumer",
                vec![assign("seen", v("flag")), assign("val", v("data"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(or(eq(v("seen"), c(0)), eq(v("val"), c(42)))),
            ])
            .build()
    }

    #[test]
    fn mp_safe_under_tso_unsafe_under_pso() {
        assert_eq!(check(&mp(), MemoryModel::Tso), Outcome::Safe);
        assert_eq!(check(&mp(), MemoryModel::Pso), Outcome::Unsafe);
    }

    #[test]
    fn mp_with_fence_safe_under_pso() {
        let p = ProgramBuilder::new("mp-f")
            .shared("data", 0)
            .shared("flag", 0)
            .shared("seen", 0)
            .shared("val", 0)
            .thread(
                "producer",
                vec![assign("data", c(42)), fence(), assign("flag", c(1))],
            )
            .thread(
                "consumer",
                vec![assign("seen", v("flag")), assign("val", v("data"))],
            )
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(or(eq(v("seen"), c(0)), eq(v("val"), c(42)))),
            ])
            .build();
        assert_eq!(check(&p, MemoryModel::Pso), Outcome::Safe);
    }

    /// Store forwarding: a thread always sees its own latest store.
    #[test]
    fn store_forwarding_within_thread() {
        let p = ProgramBuilder::new("fwd")
            .shared("x", 0)
            .shared("r", 0)
            .thread("t", vec![assign("x", c(7)), assign("r", v("x"))])
            .main(vec![spawn(1), join(1), assert_(eq(v("r"), c(7)))])
            .build();
        assert_eq!(check(&p, MemoryModel::Tso), Outcome::Safe);
        assert_eq!(check(&p, MemoryModel::Pso), Outcome::Safe);
    }

    /// Join drains the joined thread's buffer: main observes its writes.
    #[test]
    fn join_synchronizes_buffers() {
        let p = ProgramBuilder::new("join-sync")
            .shared("x", 0)
            .thread("t", vec![assign("x", c(9))])
            .main(vec![spawn(1), join(1), assert_(eq(v("x"), c(9)))])
            .build();
        assert_eq!(check(&p, MemoryModel::Tso), Outcome::Safe);
        assert_eq!(check(&p, MemoryModel::Pso), Outcome::Safe);
    }

    /// Locks drain buffers: mutual exclusion gives SC-like behaviour.
    #[test]
    fn locked_sections_are_sc_under_wmm() {
        let inc = vec![
            lock("m"),
            assign("r", v("cnt")),
            assign("cnt", add(v("r"), c(1))),
            unlock("m"),
        ];
        let p = ProgramBuilder::new("locked")
            .shared("cnt", 0)
            .mutex("m")
            .thread("w1", inc.clone())
            .thread("w2", inc)
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(eq(v("cnt"), c(2))),
            ])
            .build();
        assert_eq!(check(&p, MemoryModel::Tso), Outcome::Safe);
        assert_eq!(check(&p, MemoryModel::Pso), Outcome::Safe);
    }

    /// 2+2W: W x=1; W y=2 || W y=1; W x=2 — both final values 1 requires
    /// write reordering: impossible under TSO (W→W kept), possible in PSO.
    #[test]
    fn two_plus_two_w() {
        let p = ProgramBuilder::new("2+2w")
            .shared("x", 0)
            .shared("y", 0)
            .thread("t1", vec![assign("x", c(1)), assign("y", c(2))])
            .thread("t2", vec![assign("y", c(1)), assign("x", c(2))])
            .main(vec![
                spawn(1),
                spawn(2),
                join(1),
                join(2),
                assert_(not(and(eq(v("x"), c(1)), eq(v("y"), c(1))))),
            ])
            .build();
        assert_eq!(check(&p, MemoryModel::Tso), Outcome::Safe);
        assert_eq!(check(&p, MemoryModel::Pso), Outcome::Unsafe);
    }
}
