//! Lowering of (unrolled, loop-free) programs to flat micro-instructions.
//!
//! The flat form makes every *shared-memory access* an individual
//! instruction, so the explicit-state interpreters explore interleavings at
//! exactly the granularity the partial-order encoder models (each
//! syntactic shared read/write is one event). Expressions in the flat form
//! are over locals only — shared reads have been hoisted into
//! [`Instr::LoadShared`] temporaries (left-to-right evaluation order, the
//! same order the encoder creates read events in).

use crate::ast::{BoolExpr, IntExpr, Program, Stmt};

/// A micro-instruction. All embedded expressions reference locals only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `dst := shared[var]` — a global read event.
    LoadShared {
        /// Local temp receiving the value.
        dst: String,
        /// Shared-variable index.
        var: usize,
    },
    /// `shared[var] := val` — a global write event.
    StoreShared {
        /// Shared-variable index.
        var: usize,
        /// Value expression (local-only).
        val: IntExpr,
    },
    /// Local assignment.
    AssignLocal {
        /// Local name.
        dst: String,
        /// Value expression (local-only).
        val: IntExpr,
    },
    /// Nondeterministic integer input.
    HavocInt {
        /// Local temp receiving the value.
        dst: String,
    },
    /// Nondeterministic Boolean input (0 or 1).
    HavocBool {
        /// Local temp receiving the value.
        dst: String,
    },
    /// Conditional jump: fall through when `cond` holds, else go to `target`.
    JmpIfFalse {
        /// Condition (local-only).
        cond: BoolExpr,
        /// Jump target when the condition is false.
        target: usize,
    },
    /// Unconditional jump.
    Jmp {
        /// Target pc.
        target: usize,
    },
    /// Safety check.
    Assert(BoolExpr),
    /// Global path constraint; a false assumption silently discards the
    /// whole execution.
    Assume(BoolExpr),
    /// Acquire mutex (blocks while held).
    Lock(usize),
    /// Release mutex.
    Unlock(usize),
    /// Full memory fence.
    Fence,
    /// Begin of an atomic section.
    AtomicBegin,
    /// End of an atomic section.
    AtomicEnd,
    /// Start thread.
    Spawn(usize),
    /// Wait for thread to finish.
    Join(usize),
}

/// One thread as flat code; `pc == code.len()` means finished.
#[derive(Clone, Debug)]
pub struct FlatThread {
    /// Display name.
    pub name: String,
    /// The instructions.
    pub code: Vec<Instr>,
}

/// A lowered program.
#[derive(Clone, Debug)]
pub struct FlatProgram {
    /// Integer width.
    pub word_width: u32,
    /// Shared-variable names (index = id).
    pub shared_names: Vec<String>,
    /// Initial values of shared variables.
    pub shared_init: Vec<u64>,
    /// Number of mutexes.
    pub num_mutexes: usize,
    /// Threads; index 0 is main.
    pub threads: Vec<FlatThread>,
}

/// Lowers a loop-free program. Panics on loops — call
/// [`crate::unroll::unroll_program`] first.
pub fn flatten(prog: &Program) -> FlatProgram {
    assert!(
        !prog.has_loops(),
        "flatten requires a loop-free (unrolled) program"
    );
    let threads = prog
        .threads
        .iter()
        .map(|t| {
            let mut lw = Lowerer {
                prog,
                code: Vec::new(),
                tmp: 0,
            };
            lw.stmts(&t.body);
            FlatThread {
                name: t.name.clone(),
                code: lw.code,
            }
        })
        .collect();
    FlatProgram {
        word_width: prog.word_width,
        shared_names: prog.shared.iter().map(|(n, _)| n.clone()).collect(),
        shared_init: prog.shared.iter().map(|&(_, v)| v).collect(),
        num_mutexes: prog.mutexes.len(),
        threads,
    }
}

struct Lowerer<'a> {
    prog: &'a Program,
    code: Vec<Instr>,
    tmp: usize,
}

impl Lowerer<'_> {
    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("%t{}", self.tmp)
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(x, e) => {
                let val = self.int(e);
                match self.prog.shared_index(x) {
                    Some(var) => self.code.push(Instr::StoreShared { var, val }),
                    None => self.code.push(Instr::AssignLocal {
                        dst: x.clone(),
                        val,
                    }),
                }
            }
            Stmt::If(c, t, e) => {
                let cond = self.bool(c);
                let jmp_at = self.code.len();
                self.code.push(Instr::JmpIfFalse {
                    cond,
                    target: usize::MAX,
                });
                self.stmts(t);
                if e.is_empty() {
                    let end = self.code.len();
                    self.patch_jmp(jmp_at, end);
                } else {
                    let skip_at = self.code.len();
                    self.code.push(Instr::Jmp { target: usize::MAX });
                    let else_start = self.code.len();
                    self.patch_jmp(jmp_at, else_start);
                    self.stmts(e);
                    let end = self.code.len();
                    self.patch_jmp(skip_at, end);
                }
            }
            Stmt::While(..) => unreachable!("loop survived unrolling"),
            Stmt::Assert(c) => {
                let cond = self.bool(c);
                self.code.push(Instr::Assert(cond));
            }
            Stmt::Assume(c) => {
                let cond = self.bool(c);
                self.code.push(Instr::Assume(cond));
            }
            Stmt::Lock(m) => {
                let i = self.prog.mutex_index(m).expect("validated mutex");
                self.code.push(Instr::Lock(i));
            }
            Stmt::Unlock(m) => {
                let i = self.prog.mutex_index(m).expect("validated mutex");
                self.code.push(Instr::Unlock(i));
            }
            Stmt::Fence => self.code.push(Instr::Fence),
            Stmt::AtomicBegin => self.code.push(Instr::AtomicBegin),
            Stmt::AtomicEnd => self.code.push(Instr::AtomicEnd),
            Stmt::Spawn(i) => self.code.push(Instr::Spawn(*i)),
            Stmt::Join(i) => self.code.push(Instr::Join(*i)),
            Stmt::Skip => {}
        }
    }

    fn patch_jmp(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Instr::JmpIfFalse { target: t, .. } | Instr::Jmp { target: t } => *t = target,
            _ => unreachable!("patching a non-jump"),
        }
    }

    /// Lowers an integer expression, hoisting shared reads and nondets.
    fn int(&mut self, e: &IntExpr) -> IntExpr {
        match e {
            IntExpr::Const(v) => IntExpr::Const(*v),
            IntExpr::Var(x) => match self.prog.shared_index(x) {
                Some(var) => {
                    let dst = self.fresh();
                    self.code.push(Instr::LoadShared {
                        dst: dst.clone(),
                        var,
                    });
                    IntExpr::Var(dst)
                }
                None => IntExpr::Var(x.clone()),
            },
            IntExpr::Nondet(name) => {
                let dst = format!("%nd_{name}");
                self.code.push(Instr::HavocInt { dst: dst.clone() });
                IntExpr::Var(dst)
            }
            IntExpr::Add(a, b) => bin(self.int(a), self.int(b), IntExpr::Add),
            IntExpr::Sub(a, b) => bin(self.int(a), self.int(b), IntExpr::Sub),
            IntExpr::Mul(a, b) => bin(self.int(a), self.int(b), IntExpr::Mul),
            IntExpr::BitAnd(a, b) => bin(self.int(a), self.int(b), IntExpr::BitAnd),
            IntExpr::BitOr(a, b) => bin(self.int(a), self.int(b), IntExpr::BitOr),
            IntExpr::BitXor(a, b) => bin(self.int(a), self.int(b), IntExpr::BitXor),
            IntExpr::Shl(a, by) => IntExpr::Shl(Box::new(self.int(a)), *by),
            IntExpr::Shr(a, by) => IntExpr::Shr(Box::new(self.int(a)), *by),
            IntExpr::Ite(c, a, b) => {
                let lc = self.bool(c);
                let la = self.int(a);
                let lb = self.int(b);
                IntExpr::Ite(Box::new(lc), Box::new(la), Box::new(lb))
            }
        }
    }

    /// Lowers a Boolean expression, hoisting shared reads and nondets.
    fn bool(&mut self, e: &BoolExpr) -> BoolExpr {
        match e {
            BoolExpr::Const(v) => BoolExpr::Const(*v),
            BoolExpr::Nondet(name) => {
                let dst = format!("%nb_{name}");
                self.code.push(Instr::HavocBool { dst: dst.clone() });
                BoolExpr::Ne(Box::new(IntExpr::Var(dst)), Box::new(IntExpr::Const(0)))
            }
            BoolExpr::Not(a) => BoolExpr::Not(Box::new(self.bool(a))),
            BoolExpr::And(a, b) => BoolExpr::And(Box::new(self.bool(a)), Box::new(self.bool(b))),
            BoolExpr::Or(a, b) => BoolExpr::Or(Box::new(self.bool(a)), Box::new(self.bool(b))),
            BoolExpr::Eq(a, b) => cmp(self.int(a), self.int(b), BoolExpr::Eq),
            BoolExpr::Ne(a, b) => cmp(self.int(a), self.int(b), BoolExpr::Ne),
            BoolExpr::Lt(a, b) => cmp(self.int(a), self.int(b), BoolExpr::Lt),
            BoolExpr::Le(a, b) => cmp(self.int(a), self.int(b), BoolExpr::Le),
            BoolExpr::Gt(a, b) => cmp(self.int(a), self.int(b), BoolExpr::Gt),
            BoolExpr::Ge(a, b) => cmp(self.int(a), self.int(b), BoolExpr::Ge),
        }
    }
}

fn bin(a: IntExpr, b: IntExpr, f: fn(Box<IntExpr>, Box<IntExpr>) -> IntExpr) -> IntExpr {
    f(Box::new(a), Box::new(b))
}

fn cmp(a: IntExpr, b: IntExpr, f: fn(Box<IntExpr>, Box<IntExpr>) -> BoolExpr) -> BoolExpr {
    f(Box::new(a), Box::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    fn prog_xy() -> Program {
        ProgramBuilder::new("p")
            .shared("x", 0)
            .shared("y", 0)
            .thread("t1", vec![assign("x", add(v("y"), c(1)))])
            .main(vec![assert_(eq(v("x"), c(1)))])
            .build()
    }

    #[test]
    fn shared_reads_are_hoisted_left_to_right() {
        let fp = flatten(&prog_xy());
        let t1 = &fp.threads[1].code;
        // read y into a temp, then store x.
        assert!(matches!(t1[0], Instr::LoadShared { var: 1, .. }));
        assert!(matches!(t1[1], Instr::StoreShared { var: 0, .. }));
        // Main: spawn, join, load x, assert.
        let main = &fp.threads[0].code;
        assert!(matches!(main[0], Instr::Spawn(1)));
        assert!(matches!(main[1], Instr::Join(1)));
        assert!(matches!(main[2], Instr::LoadShared { var: 0, .. }));
        assert!(matches!(main[3], Instr::Assert(_)));
    }

    #[test]
    fn multiple_reads_in_one_expr_are_separate_loads() {
        let p = ProgramBuilder::new("p")
            .shared("x", 0)
            .thread("t", vec![assign("r", add(v("x"), v("x")))])
            .build();
        let fp = flatten(&p);
        let loads = fp.threads[1]
            .code
            .iter()
            .filter(|i| matches!(i, Instr::LoadShared { .. }))
            .count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn if_lowering_targets() {
        let p = ProgramBuilder::new("p")
            .shared("x", 0)
            .thread(
                "t",
                vec![if_(
                    eq(v("x"), c(0)),
                    vec![assign("a", c(1))],
                    vec![assign("a", c(2))],
                )],
            )
            .build();
        let fp = flatten(&p);
        let code = &fp.threads[1].code;
        // load x; jmp-if-false L_else; a:=1; jmp L_end; L_else: a:=2; L_end.
        let Instr::JmpIfFalse { target: else_t, .. } = &code[1] else {
            panic!("expected conditional jump, got {:?}", code[1]);
        };
        let Instr::Jmp { target: end_t } = &code[3] else {
            panic!("expected jump, got {:?}", code[3]);
        };
        assert_eq!(*else_t, 4);
        assert_eq!(*end_t, 5);
        assert!(matches!(code[4], Instr::AssignLocal { .. }));
        assert_eq!(code.len(), 5);
    }

    #[test]
    fn if_without_else_falls_through() {
        let p = ProgramBuilder::new("p")
            .shared("x", 0)
            .thread(
                "t",
                vec![
                    when(eq(v("x"), c(0)), vec![assign("a", c(1))]),
                    assign("b", c(2)),
                ],
            )
            .build();
        let fp = flatten(&p);
        let code = &fp.threads[1].code;
        let Instr::JmpIfFalse { target, .. } = &code[1] else {
            panic!()
        };
        assert!(matches!(code[*target], Instr::AssignLocal { ref dst, .. } if dst == "b"));
    }

    #[test]
    fn nondets_become_havocs() {
        let p = ProgramBuilder::new("p")
            .shared("x", 0)
            .thread(
                "t",
                vec![assign("x", nondet("n1")), assume(nondet_bool("c1"))],
            )
            .build();
        let fp = flatten(&p);
        let code = &fp.threads[1].code;
        assert!(matches!(code[0], Instr::HavocInt { .. }));
        assert!(matches!(code[1], Instr::StoreShared { .. }));
        assert!(matches!(code[2], Instr::HavocBool { .. }));
        assert!(matches!(code[3], Instr::Assume(_)));
    }

    #[test]
    #[should_panic(expected = "loop-free")]
    fn flatten_rejects_loops() {
        let p = ProgramBuilder::new("p")
            .shared("x", 0)
            .thread(
                "t",
                vec![while_(
                    lt(v("x"), c(3)),
                    vec![assign("x", add(v("x"), c(1)))],
                )],
            )
            .build();
        let _ = flatten(&p);
    }

    #[test]
    fn condition_reads_happen_before_branch() {
        let p = ProgramBuilder::new("p")
            .shared("x", 0)
            .shared("y", 0)
            .thread("t", vec![if_(eq(v("x"), v("y")), vec![], vec![])])
            .build();
        let fp = flatten(&p);
        let code = &fp.threads[1].code;
        assert!(matches!(code[0], Instr::LoadShared { var: 0, .. }));
        assert!(matches!(code[1], Instr::LoadShared { var: 1, .. }));
        assert!(matches!(code[2], Instr::JmpIfFalse { .. }));
    }
}
