//! NDJSON trace export, a dependency-free line parser for it, and a schema
//! validator used by `zpre-cli trace-check` and CI.
//!
//! Every line is one flat JSON object with a `"t"` tag:
//!
//! | tag         | meaning                                      |
//! |-------------|----------------------------------------------|
//! | `span`      | phase span (phase, label, member, depth, start_us, dur_us) |
//! | `decision`  | solver decision (seq, var, class, level, guided) |
//! | `conflict`  | solver conflict (seq, level, lbd)            |
//! | `lemma`     | order-theory lemma (seq, cycle_len)          |
//! | `restart`   | solver restart (seq, conflicts since last)   |
//! | `reduction` | learnt-DB reduction (seq, removed)           |
//! | `member`    | portfolio member telemetry                   |
//! | `hist`      | one distribution (name, count/sum/min/max, sparse buckets) |
//! | `summary`   | exact counters; terminates a trace block     |
//!
//! A file may hold several concatenated blocks (one per memory model when the
//! CLI iterates `--mm all`); each block ends with its own `summary` line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::VarClass;
use crate::metrics::Histogram;
use crate::recorder::{
    Counters, EventKind, EventRecord, MemberRecord, Phase, SpanRecord, TraceSnapshot,
};

/// Minimal JSON scalar for flat trace objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

impl JsonVal {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    fn new(tag: &str) -> Obj {
        let mut o = Obj {
            buf: String::from("{\"t\":"),
            first: false,
        };
        esc(&mut o.buf, tag);
        o
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.buf.push(',');
        }
    }

    fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.sep();
        esc(&mut self.buf, k);
        self.buf.push(':');
        esc(&mut self.buf, v);
        self
    }

    fn opt_str(&mut self, k: &str, v: Option<&str>) -> &mut Self {
        if let Some(v) = v {
            self.str(k, v);
        }
        self
    }

    fn num(&mut self, k: &str, v: u64) -> &mut Self {
        self.sep();
        esc(&mut self.buf, k);
        let _ = write!(self.buf, ":{v}");
        self
    }

    fn boolean(&mut self, k: &str, v: bool) -> &mut Self {
        self.sep();
        esc(&mut self.buf, k);
        let _ = write!(self.buf, ":{v}");
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn span_line(s: &SpanRecord) -> String {
    let mut o = Obj::new("span");
    o.str("phase", s.phase.name())
        .opt_str("label", s.label.as_deref())
        .opt_str("member", s.member.as_deref())
        .num("depth", s.depth as u64)
        .num("start_us", s.start_us)
        .num("dur_us", s.dur_us)
        .boolean("closed", s.closed);
    o.finish()
}

fn event_line(e: &EventRecord) -> String {
    let mut o = match e.kind {
        EventKind::Decision {
            var,
            class,
            level,
            guided,
        } => {
            let mut o = Obj::new("decision");
            o.num("seq", e.seq)
                .num("var", var as u64)
                .str("class", class.name())
                .num("level", level as u64)
                .boolean("guided", guided);
            o
        }
        EventKind::Conflict { level, lbd } => {
            let mut o = Obj::new("conflict");
            o.num("seq", e.seq)
                .num("level", level as u64)
                .num("lbd", lbd as u64);
            o
        }
        EventKind::TheoryLemma { cycle_len } => {
            let mut o = Obj::new("lemma");
            o.num("seq", e.seq).num("cycle_len", cycle_len as u64);
            o
        }
        EventKind::Restart { conflicts } => {
            let mut o = Obj::new("restart");
            o.num("seq", e.seq).num("conflicts", conflicts);
            o
        }
        EventKind::Reduction { removed } => {
            let mut o = Obj::new("reduction");
            o.num("seq", e.seq).num("removed", removed);
            o
        }
    };
    o.opt_str("member", e.member.as_deref());
    o.finish()
}

fn member_line(m: &MemberRecord) -> String {
    let mut o = Obj::new("member");
    o.str("name", &m.name)
        .str("strategy", &m.strategy)
        .str("verdict", &m.verdict)
        .boolean("winner", m.winner)
        .boolean("cancelled", m.cancelled)
        .num("decisions", m.decisions)
        .num("conflicts", m.conflicts)
        .num("time_us", m.time_us)
        .opt_str("error", m.error.as_deref());
    o.finish()
}

fn hist_line(name: &str, h: &Histogram) -> String {
    let mut o = Obj::new("hist");
    o.str("name", name)
        .num("count", h.count())
        .num("sum", h.sum())
        .num("min", h.min())
        .num("max", h.max())
        .str("buckets", &h.encode_buckets());
    o.finish()
}

fn summary_line(snap: &TraceSnapshot) -> String {
    let c = &snap.counters;
    let mut o = Obj::new("summary");
    o.num("sample", snap.decision_sample as u64);
    for cls in VarClass::all() {
        o.num(&format!("dec_{}", cls.name()), c.decisions[cls.index()]);
        o.num(&format!("gd_{}", cls.name()), c.guided[cls.index()]);
    }
    o.num("conflicts", c.conflicts)
        .num("lemmas", c.theory_lemmas)
        .num("lemma_cycle_edges", c.lemma_cycle_edges)
        .num("restarts", c.restarts)
        .num("reductions", c.reductions)
        .num("clauses_removed", c.clauses_removed)
        .num("cc_total", c.cycle_checks)
        .num("cc_o1", c.cycle_accepted_o1)
        .num("cc_searched", c.cycle_searched)
        .num("cc_visited", c.cycle_visited)
        .num("cc_promoted", c.cycle_promoted)
        .num("dropped", c.dropped_events)
        .num("frames", c.frames)
        .num("fr_learnts", c.frame_reused_learnts)
        .num("fr_conflicts", c.frame_reused_conflicts)
        .num("batch_tasks", c.batch_tasks)
        .num("batch_retries", c.batch_retries)
        .num("batch_degraded", c.batch_degraded)
        .num("batch_checkpoints", c.batch_checkpoints)
        .num("sh_exported", c.sh_exported)
        .num("sh_exported_theory", c.sh_exported_theory)
        .num("sh_exported_rf", c.sh_exported_rf)
        .num("sh_imported", c.sh_imported)
        .num("sh_dropped", c.sh_dropped)
        .num("sh_import_hits", c.sh_import_hits)
        .num("pr_rf_pruned", c.pr_rf_pruned)
        .num("pr_rf_kept", c.pr_rf_kept)
        .num("pr_ws_pruned", c.pr_ws_pruned)
        .num("pr_ws_serialized", c.pr_ws_serialized)
        .num("pr_reads_resolved", c.pr_reads_resolved)
        .num("pr_local_vars", c.pr_local_vars);
    o.finish()
}

/// Serialize a snapshot as one NDJSON block (terminated by a `summary` line).
pub fn to_ndjson(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for s in &snap.spans {
        out.push_str(&span_line(s));
        out.push('\n');
    }
    for e in &snap.events {
        out.push_str(&event_line(e));
        out.push('\n');
    }
    for m in &snap.members {
        out.push_str(&member_line(m));
        out.push('\n');
    }
    // Empty distributions are elided: a `hist` line asserts observations.
    for (name, h) in snap.hists.named() {
        if h.count() > 0 {
            out.push_str(&hist_line(&name, h));
            out.push('\n');
        }
    }
    out.push_str(&summary_line(snap));
    out.push('\n');
    out
}

/// Parse one flat JSON object (strings, non-negative integers, booleans,
/// null). Rejects nesting — trace lines are flat by construction.
pub fn parse_line(line: &str) -> Result<BTreeMap<String, JsonVal>, String> {
    let b: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    let mut map = BTreeMap::new();

    fn skip_ws(b: &[char], i: &mut usize) {
        while *i < b.len() && b[*i].is_whitespace() {
            *i += 1;
        }
    }

    fn parse_string(b: &[char], i: &mut usize) -> Result<String, String> {
        if b.get(*i) != Some(&'"') {
            return Err(format!("expected '\"' at {i:?}", i = *i));
        }
        *i += 1;
        let mut s = String::new();
        while *i < b.len() {
            match b[*i] {
                '"' => {
                    *i += 1;
                    return Ok(s);
                }
                '\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('/') => s.push('/'),
                        Some('n') => s.push('\n'),
                        Some('r') => s.push('\r'),
                        Some('t') => s.push('\t'),
                        Some('u') => {
                            let hex: String = b
                                .get(*i + 1..*i + 5)
                                .ok_or("truncated \\u escape")?
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            *i += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *i += 1;
                }
                c => {
                    s.push(c);
                    *i += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    skip_ws(&b, &mut i);
    if b.get(i) != Some(&'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    loop {
        skip_ws(&b, &mut i);
        if b.get(i) == Some(&'}') {
            i += 1;
            break;
        }
        let key = parse_string(&b, &mut i)?;
        skip_ws(&b, &mut i);
        if b.get(i) != Some(&':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&b, &mut i);
        let val = match b.get(i) {
            Some('"') => JsonVal::Str(parse_string(&b, &mut i)?),
            Some('t') => {
                if b.get(i..i + 4).map(|s| s.iter().collect::<String>()) == Some("true".into()) {
                    i += 4;
                    JsonVal::Bool(true)
                } else {
                    return Err("bad literal".into());
                }
            }
            Some('f') => {
                if b.get(i..i + 5).map(|s| s.iter().collect::<String>()) == Some("false".into()) {
                    i += 5;
                    JsonVal::Bool(false)
                } else {
                    return Err("bad literal".into());
                }
            }
            Some('n') => {
                if b.get(i..i + 4).map(|s| s.iter().collect::<String>()) == Some("null".into()) {
                    i += 4;
                    JsonVal::Null
                } else {
                    return Err("bad literal".into());
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let s: String = b[start..i].iter().collect();
                JsonVal::Num(s.parse().map_err(|e| format!("bad number: {e}"))?)
            }
            Some('{') | Some('[') => return Err("nested values not allowed in trace lines".into()),
            _ => return Err(format!("unexpected value for key {key:?}")),
        };
        map.insert(key, val);
        skip_ws(&b, &mut i);
        match b.get(i) {
            Some(',') => i += 1,
            Some('}') => {
                i += 1;
                break;
            }
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    skip_ws(&b, &mut i);
    if i != b.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(map)
}

fn get_num(map: &BTreeMap<String, JsonVal>, k: &str) -> Result<u64, String> {
    map.get(k)
        .and_then(JsonVal::as_u64)
        .ok_or_else(|| format!("missing/invalid numeric field {k:?}"))
}

fn get_str<'a>(map: &'a BTreeMap<String, JsonVal>, k: &str) -> Result<&'a str, String> {
    map.get(k)
        .and_then(JsonVal::as_str)
        .ok_or_else(|| format!("missing/invalid string field {k:?}"))
}

fn get_bool(map: &BTreeMap<String, JsonVal>, k: &str) -> Result<bool, String> {
    map.get(k)
        .and_then(JsonVal::as_bool)
        .ok_or_else(|| format!("missing/invalid boolean field {k:?}"))
}

fn opt_string(map: &BTreeMap<String, JsonVal>, k: &str) -> Option<String> {
    map.get(k).and_then(JsonVal::as_str).map(str::to_owned)
}

/// Parse a single NDJSON block back into a [`TraceSnapshot`]. Inverse of
/// [`to_ndjson`] for blocks produced by it (the round-trip is exact).
pub fn from_ndjson(text: &str) -> Result<TraceSnapshot, String> {
    from_ndjson_at(text, 1)
}

/// [`from_ndjson`] for a block that starts at absolute line `first_line` of
/// a larger file: parse errors report file line numbers, so a failure inside
/// the third concatenated block points at the real line, not an offset into
/// the block.
pub fn from_ndjson_at(text: &str, first_line: usize) -> Result<TraceSnapshot, String> {
    let mut snap = TraceSnapshot::default();
    let mut saw_summary = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + first_line;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if saw_summary {
            return Err(format!("line {lineno}: content after summary"));
        }
        let map = parse_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let tag = get_str(&map, "t").map_err(|e| format!("line {lineno}: {e}"))?;
        let res: Result<(), String> = (|| {
            match tag {
                "span" => {
                    let phase_name = get_str(&map, "phase")?;
                    let phase = Phase::from_name(phase_name)
                        .ok_or_else(|| format!("unknown phase {phase_name:?}"))?;
                    snap.spans.push(SpanRecord {
                        phase,
                        label: opt_string(&map, "label"),
                        member: opt_string(&map, "member"),
                        depth: get_num(&map, "depth")? as u32,
                        start_us: get_num(&map, "start_us")?,
                        dur_us: get_num(&map, "dur_us")?,
                        closed: get_bool(&map, "closed")?,
                    });
                }
                "decision" => {
                    let class_name = get_str(&map, "class")?;
                    let class = VarClass::from_name(class_name)
                        .ok_or_else(|| format!("unknown class {class_name:?}"))?;
                    snap.events.push(EventRecord {
                        seq: get_num(&map, "seq")?,
                        member: opt_string(&map, "member"),
                        kind: EventKind::Decision {
                            var: get_num(&map, "var")? as u32,
                            class,
                            level: get_num(&map, "level")? as u32,
                            guided: get_bool(&map, "guided")?,
                        },
                    });
                }
                "conflict" => {
                    snap.events.push(EventRecord {
                        seq: get_num(&map, "seq")?,
                        member: opt_string(&map, "member"),
                        kind: EventKind::Conflict {
                            level: get_num(&map, "level")? as u32,
                            lbd: get_num(&map, "lbd")? as u32,
                        },
                    });
                }
                "lemma" => {
                    snap.events.push(EventRecord {
                        seq: get_num(&map, "seq")?,
                        member: opt_string(&map, "member"),
                        kind: EventKind::TheoryLemma {
                            cycle_len: get_num(&map, "cycle_len")? as u32,
                        },
                    });
                }
                "restart" => {
                    snap.events.push(EventRecord {
                        seq: get_num(&map, "seq")?,
                        member: opt_string(&map, "member"),
                        kind: EventKind::Restart {
                            // The interval arrived after PR 3; absent in old
                            // traces, so it parses leniently.
                            conflicts: get_num(&map, "conflicts").unwrap_or(0),
                        },
                    });
                }
                "reduction" => {
                    snap.events.push(EventRecord {
                        seq: get_num(&map, "seq")?,
                        member: opt_string(&map, "member"),
                        kind: EventKind::Reduction {
                            removed: get_num(&map, "removed")?,
                        },
                    });
                }
                "hist" => {
                    let name = get_str(&map, "name")?;
                    let h = Histogram::decode(
                        get_num(&map, "count")?,
                        get_num(&map, "sum")?,
                        get_num(&map, "min")?,
                        get_num(&map, "max")?,
                        get_str(&map, "buckets")?,
                    )
                    .map_err(|e| format!("hist {name:?}: {e}"))?;
                    *snap
                        .hists
                        .by_name_mut(name)
                        .ok_or_else(|| format!("unknown hist name {name:?}"))? = h;
                }
                "member" => {
                    snap.members.push(MemberRecord {
                        name: get_str(&map, "name")?.to_owned(),
                        strategy: get_str(&map, "strategy")?.to_owned(),
                        verdict: get_str(&map, "verdict")?.to_owned(),
                        winner: get_bool(&map, "winner")?,
                        cancelled: get_bool(&map, "cancelled")?,
                        decisions: get_num(&map, "decisions")?,
                        conflicts: get_num(&map, "conflicts")?,
                        time_us: get_num(&map, "time_us")?,
                        error: opt_string(&map, "error"),
                    });
                }
                "summary" => {
                    snap.decision_sample = get_num(&map, "sample")? as u32;
                    let mut c = Counters::default();
                    for cls in VarClass::all() {
                        c.decisions[cls.index()] = get_num(&map, &format!("dec_{}", cls.name()))?;
                        c.guided[cls.index()] = get_num(&map, &format!("gd_{}", cls.name()))?;
                    }
                    c.conflicts = get_num(&map, "conflicts")?;
                    c.theory_lemmas = get_num(&map, "lemmas")?;
                    c.lemma_cycle_edges = get_num(&map, "lemma_cycle_edges")?;
                    c.restarts = get_num(&map, "restarts")?;
                    c.reductions = get_num(&map, "reductions")?;
                    c.clauses_removed = get_num(&map, "clauses_removed")?;
                    c.cycle_checks = get_num(&map, "cc_total")?;
                    c.cycle_accepted_o1 = get_num(&map, "cc_o1")?;
                    c.cycle_searched = get_num(&map, "cc_searched")?;
                    c.cycle_visited = get_num(&map, "cc_visited")?;
                    c.cycle_promoted = get_num(&map, "cc_promoted")?;
                    c.dropped_events = get_num(&map, "dropped")?;
                    // Sweep-frame counters arrived later; absent in old
                    // traces, so they parse leniently.
                    c.frames = get_num(&map, "frames").unwrap_or(0);
                    c.frame_reused_learnts = get_num(&map, "fr_learnts").unwrap_or(0);
                    c.frame_reused_conflicts = get_num(&map, "fr_conflicts").unwrap_or(0);
                    // Batch-harness counters arrived later still; same
                    // leniency for traces that predate them.
                    c.batch_tasks = get_num(&map, "batch_tasks").unwrap_or(0);
                    c.batch_retries = get_num(&map, "batch_retries").unwrap_or(0);
                    c.batch_degraded = get_num(&map, "batch_degraded").unwrap_or(0);
                    c.batch_checkpoints = get_num(&map, "batch_checkpoints").unwrap_or(0);
                    // Clause-sharing counters are newer again; lenient too.
                    c.sh_exported = get_num(&map, "sh_exported").unwrap_or(0);
                    c.sh_exported_theory = get_num(&map, "sh_exported_theory").unwrap_or(0);
                    c.sh_exported_rf = get_num(&map, "sh_exported_rf").unwrap_or(0);
                    c.sh_imported = get_num(&map, "sh_imported").unwrap_or(0);
                    c.sh_dropped = get_num(&map, "sh_dropped").unwrap_or(0);
                    c.sh_import_hits = get_num(&map, "sh_import_hits").unwrap_or(0);
                    // Prune counters are newer still; lenient as well.
                    c.pr_rf_pruned = get_num(&map, "pr_rf_pruned").unwrap_or(0);
                    c.pr_rf_kept = get_num(&map, "pr_rf_kept").unwrap_or(0);
                    c.pr_ws_pruned = get_num(&map, "pr_ws_pruned").unwrap_or(0);
                    c.pr_ws_serialized = get_num(&map, "pr_ws_serialized").unwrap_or(0);
                    c.pr_reads_resolved = get_num(&map, "pr_reads_resolved").unwrap_or(0);
                    c.pr_local_vars = get_num(&map, "pr_local_vars").unwrap_or(0);
                    snap.counters = c;
                    saw_summary = true;
                }
                other => return Err(format!("unknown line tag {other:?}")),
            }
            Ok(())
        })();
        res.map_err(|e| format!("line {lineno}: {e}"))?;
    }
    if !saw_summary {
        return Err("trace block has no summary line".into());
    }
    Ok(snap)
}

/// Aggregate report produced by [`validate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    pub blocks: usize,
    pub spans: usize,
    pub events: usize,
    pub members: usize,
    /// Distinct phase names seen across all blocks, in first-seen order.
    pub phases_seen: Vec<String>,
    /// Total decisions per class summed over block summaries.
    pub decisions_by_class: [u64; VarClass::COUNT],
    pub conflicts: u64,
    pub lemmas: u64,
}

/// Validate a trace file: split into `summary`-terminated blocks, parse every
/// line, and check schema + internal consistency (monotone event sequence
/// numbers per block, recorded events consistent with summary counters).
pub fn validate(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    let mut block = String::new();
    let mut block_start = 1usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            // Keep blank lines in the block so its line numbering stays
            // aligned with the file's (errors report absolute lines).
            block.push('\n');
            continue;
        }
        block.push_str(line);
        block.push('\n');
        let map = parse_line(line.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if map.get("t").and_then(JsonVal::as_str) == Some("summary") {
            validate_block(&block, block_start, &mut report)?;
            report.blocks += 1;
            block.clear();
            block_start = lineno + 2;
        }
    }
    if !block.trim().is_empty() {
        return Err(format!(
            "trailing lines from line {block_start} not terminated by a summary"
        ));
    }
    if report.blocks == 0 {
        return Err("no trace blocks found".into());
    }
    Ok(report)
}

fn validate_block(block: &str, start_line: usize, report: &mut TraceReport) -> Result<(), String> {
    let snap = from_ndjson_at(block, start_line)?;
    let mut last_seq: Option<u64> = None;
    let mut recorded_decisions = 0u64;
    let mut recorded_conflicts = 0u64;
    for e in &snap.events {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                return Err(format!(
                    "block at line {start_line}: event seq {} not increasing (prev {prev})",
                    e.seq
                ));
            }
        }
        last_seq = Some(e.seq);
        match e.kind {
            EventKind::Decision { .. } => recorded_decisions += 1,
            EventKind::Conflict { .. } => recorded_conflicts += 1,
            _ => {}
        }
    }
    let c = &snap.counters;
    let total = c.total_decisions();
    if recorded_decisions > total {
        return Err(format!(
            "block at line {start_line}: {recorded_decisions} decision events exceed summary total {total}"
        ));
    }
    if recorded_decisions > 0 && recorded_decisions + c.dropped_events != total {
        return Err(format!(
            "block at line {start_line}: recorded ({recorded_decisions}) + dropped ({}) != total decisions ({total})",
            c.dropped_events
        ));
    }
    if recorded_conflicts > c.conflicts {
        return Err(format!(
            "block at line {start_line}: conflict events exceed summary counter"
        ));
    }
    if c.cycle_accepted_o1 + c.cycle_searched != c.cycle_checks {
        return Err(format!(
            "block at line {start_line}: cycle-check split broken: o1 ({}) + searched ({}) != total ({})",
            c.cycle_accepted_o1, c.cycle_searched, c.cycle_checks
        ));
    }
    // Distribution/counter reconciliation: each histogram is fed on exactly
    // the event path its counter tracks, so a present histogram must agree
    // with the summary. Absent histograms (count 0) are fine — pre-histogram
    // traces carry none.
    for (name, h, counter, counter_name) in [
        (
            "conflict_lbd",
            &snap.hists.conflict_lbd,
            c.conflicts,
            "conflicts",
        ),
        (
            "lemma_cycle_len",
            &snap.hists.lemma_cycle_len,
            c.theory_lemmas,
            "lemmas",
        ),
        (
            "restart_interval",
            &snap.hists.restart_interval,
            c.restarts,
            "restarts",
        ),
        (
            "cycle_visited",
            &snap.hists.cycle_visited,
            c.cycle_searched,
            "cc_searched",
        ),
    ] {
        if h.count() != 0 && h.count() != counter {
            return Err(format!(
                "block at line {start_line}: hist {name:?} has {} observations but summary key {counter_name:?} is {counter}",
                h.count()
            ));
        }
    }
    for s in &snap.spans {
        if !s.closed {
            return Err(format!(
                "block at line {start_line}: unclosed {} span in exported trace",
                s.phase.name()
            ));
        }
        let name = s.phase.name().to_owned();
        if !report.phases_seen.contains(&name) {
            report.phases_seen.push(name);
        }
    }
    report.spans += snap.spans.len();
    report.events += snap.events.len();
    report.members += snap.members.len();
    for cls in VarClass::all() {
        report.decisions_by_class[cls.index()] += c.decisions[cls.index()];
    }
    report.conflicts += c.conflicts;
    report.lemmas += c.theory_lemmas;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::{Phase, Recorder, TraceConfig};
    use crate::EventSink;

    fn sample_snapshot() -> TraceSnapshot {
        let rec = Recorder::new(TraceConfig {
            events: true,
            decision_sample: 1,
        });
        rec.set_var_classes(vec![
            VarClass::ExternalRf,
            VarClass::Ws,
            VarClass::InternalRf,
        ]);
        {
            let _encode = rec.span_labeled(Phase::Encode, Some("sc"));
            let _blast = rec.span(Phase::Blast);
        }
        let solver = rec.member_labeled("zpre");
        for var in 0..4u32 {
            solver.emit(Event::Decision {
                var,
                level: var,
                guided: true,
            });
        }
        solver.emit(Event::Conflict { level: 3, lbd: 2 });
        solver.emit(Event::TheoryLemma { cycle_len: 5 });
        solver.emit(Event::Restart { conflicts: 1 });
        solver.emit(Event::Reduction { removed: 7 });
        solver.emit(Event::CycleCheck {
            visited: 0,
            promoted: 0,
            accepted_o1: true,
        });
        solver.emit(Event::CycleCheck {
            visited: 6,
            promoted: 2,
            accepted_o1: false,
        });
        rec.record_member(crate::recorder::MemberRecord {
            name: "zpre".into(),
            strategy: "zpre".into(),
            verdict: "safe".into(),
            winner: true,
            cancelled: false,
            decisions: 4,
            conflicts: 1,
            time_us: 1234,
            error: None,
        });
        rec.snapshot()
    }

    #[test]
    fn ndjson_round_trip_exact() {
        let snap = sample_snapshot();
        let text = to_ndjson(&snap);
        let back = from_ndjson(&text).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn validate_accepts_generated_trace() {
        let snap = sample_snapshot();
        let text = to_ndjson(&snap);
        let report = validate(&text).expect("valid");
        assert_eq!(report.blocks, 1);
        assert_eq!(report.spans, 2);
        assert_eq!(report.members, 1);
        assert_eq!(report.conflicts, 1);
        assert_eq!(report.decisions_by_class.iter().sum::<u64>(), 4);
        assert!(report.phases_seen.contains(&"encode".to_string()));
        assert!(report.phases_seen.contains(&"blast".to_string()));
    }

    #[test]
    fn validate_accepts_concatenated_blocks() {
        let snap = sample_snapshot();
        let mut text = to_ndjson(&snap);
        text.push_str(&to_ndjson(&snap));
        let report = validate(&text).expect("two blocks valid");
        assert_eq!(report.blocks, 2);
        assert_eq!(report.decisions_by_class.iter().sum::<u64>(), 8);
    }

    #[test]
    fn validate_rejects_bad_input() {
        assert!(validate("").is_err());
        assert!(validate("{\"t\":\"decision\"}\n").is_err());
        assert!(validate("not json\n").is_err());
        // Block without a terminating summary.
        let snap = sample_snapshot();
        let text = to_ndjson(&snap);
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("\"t\":\"summary\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate(&truncated).is_err());
        // Tampered summary: fewer decisions than recorded events.
        let tampered = text.replace("\"dec_rf_ext\":1", "\"dec_rf_ext\":0");
        assert!(validate(&tampered).is_err());
    }

    #[test]
    fn validate_rejects_broken_cycle_check_split() {
        let snap = sample_snapshot();
        let text = to_ndjson(&snap);
        assert_eq!(snap.counters.cycle_checks, 2);
        // o1 + searched must equal the total check count.
        let tampered = text.replace("\"cc_o1\":1", "\"cc_o1\":2");
        assert!(validate(&tampered)
            .unwrap_err()
            .contains("cycle-check split"));
    }

    #[test]
    fn hist_lines_round_trip_and_reconcile() {
        let snap = sample_snapshot();
        let text = to_ndjson(&snap);
        // The sample conflicts/lemmas/restarts all feed their histograms.
        assert!(text.contains("\"t\":\"hist\",\"name\":\"conflict_lbd\""));
        assert!(text.contains("\"name\":\"lemma_cycle_len\""));
        assert!(text.contains("\"name\":\"restart_interval\""));
        let back = from_ndjson(&text).expect("parse back");
        assert_eq!(back.hists, snap.hists);
        // Tampering a histogram count breaks reconciliation with the
        // summary counter and validate names both sides.
        let line = text
            .lines()
            .find(|l| l.contains("\"name\":\"conflict_lbd\""))
            .unwrap();
        let tampered_line = line
            .replace("\"count\":1", "\"count\":2")
            .replace("\"buckets\":\"2:1\"", "\"buckets\":\"2:2\"");
        let tampered = text.replace(line, &tampered_line);
        let err = validate(&tampered).unwrap_err();
        assert!(err.contains("conflict_lbd"), "got: {err}");
        assert!(err.contains("conflicts"), "got: {err}");
    }

    #[test]
    fn errors_carry_absolute_line_numbers_and_key() {
        let snap = sample_snapshot();
        let mut text = to_ndjson(&snap);
        let first_block_lines = text.lines().count();
        text.push_str(&to_ndjson(&snap));
        // Break a line in the SECOND block: drop a required key.
        let broken = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i >= first_block_lines && l.contains("\"t\":\"conflict\"") {
                    l.replace("\"lbd\":2", "\"xlbd\":2")
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = validate(&broken).unwrap_err();
        // The error names the offending key and the absolute file line.
        assert!(err.contains("\"lbd\""), "got: {err}");
        let bad_line = 1 + text
            .lines()
            .enumerate()
            .position(|(i, l)| i >= first_block_lines && l.contains("\"t\":\"conflict\""))
            .unwrap();
        assert!(err.contains(&format!("line {bad_line}")), "got: {err}");
    }

    /// Compile-guard: this exhaustive struct literal fails to build when a
    /// field is added to `Counters`, forcing the author to extend it here —
    /// and the round-trip assertion then fails until `summary_line` *and*
    /// the `from_ndjson` summary parser both carry the new field.
    #[test]
    fn counters_round_trip_is_exhaustive() {
        let counters = Counters {
            decisions: [11, 12, 13, 14],
            guided: [5, 6, 7, 8],
            conflicts: 21,
            theory_lemmas: 22,
            lemma_cycle_edges: 23,
            restarts: 24,
            reductions: 25,
            clauses_removed: 26,
            cycle_checks: 60,
            cycle_accepted_o1: 33,
            cycle_searched: 27,
            cycle_visited: 28,
            cycle_promoted: 29,
            dropped_events: 30,
            frames: 31,
            frame_reused_learnts: 32,
            frame_reused_conflicts: 33,
            batch_tasks: 34,
            batch_retries: 35,
            batch_degraded: 36,
            batch_checkpoints: 37,
            sh_exported: 38,
            sh_exported_theory: 39,
            sh_exported_rf: 40,
            sh_imported: 41,
            sh_dropped: 42,
            sh_import_hits: 43,
            pr_rf_pruned: 44,
            pr_rf_kept: 45,
            pr_ws_pruned: 46,
            pr_ws_serialized: 47,
            pr_reads_resolved: 48,
            pr_local_vars: 49,
        };
        let snap = TraceSnapshot {
            decision_sample: 3,
            counters: counters.clone(),
            ..TraceSnapshot::default()
        };
        let back = from_ndjson(&to_ndjson(&snap)).expect("parse back");
        assert_eq!(back.counters, counters);
        assert_eq!(back.decision_sample, 3);
    }

    #[test]
    fn parse_line_handles_escapes_and_rejects_nesting() {
        let map = parse_line(r#"{"t":"span","phase":"solve","label":"a\"b\\c\n"}"#).unwrap();
        assert_eq!(map.get("label").unwrap().as_str().unwrap(), "a\"b\\c\n");
        assert!(parse_line(r#"{"t":"x","v":{"nested":1}}"#).is_err());
        assert!(parse_line(r#"{"t":"x"} trailing"#).is_err());
        assert!(parse_line(r#"{"t":"x","v":-1}"#).is_err());
    }
}
