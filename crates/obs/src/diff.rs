//! Trace comparison and the telemetry regression gate.
//!
//! Compares two [`TraceStats`] metric maps (from raw traces or metrics-line
//! baselines) under a relative tolerance and produces a machine-readable
//! verdict per metric. Only metrics with a known *direction* participate in
//! the gate: counters where less is better (conflicts, visited nodes, LBD
//! percentiles) regress upward, shares where more is better (H1 share,
//! O(1) acceptance) regress downward, and everything else — including all
//! wall-clock metrics unless explicitly opted in — is informational, so a
//! same-config rerun gates clean on any machine.

use std::fmt::Write as _;

use crate::analyze::TraceStats;

/// Which way a metric is allowed to move without regressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Growth beyond tolerance is a regression (work counters).
    LowerBetter,
    /// Shrinkage beyond tolerance is a regression (quality shares).
    HigherBetter,
    /// Reported but never gated.
    Info,
}

/// Per-metric comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Regressed,
    Improved,
    WithinNoise,
    /// Ungated metric: the relative change is reported, nothing judged.
    Info,
}

impl Verdict {
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::WithinNoise => "within-noise",
            Verdict::Info => "info",
        }
    }
}

/// Gate configuration.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance: a gated metric may move by this fraction of the
    /// baseline before it is judged. Default 0.20 (±20%).
    pub tolerance: f64,
    /// Relative changes are computed against `max(base, min_base)`, damping
    /// small-count noise: going from 2 conflicts to 4 is not a 100%
    /// regression worth failing CI over. Default 16.
    pub min_base: u64,
    /// Gate wall-clock metrics (`*_us`, `*_ms`) too. Off by default so the
    /// gate stays deterministic across machines and CI load.
    pub gate_time: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.20,
            min_base: 16,
            gate_time: false,
        }
    }
}

/// Direction of a metric by its stable name (the [`TraceStats`] vocabulary).
/// Time metrics return [`Direction::Info`] here; [`diff`] upgrades them to
/// [`Direction::LowerBetter`] under [`DiffOptions::gate_time`].
pub fn direction_of(name: &str) -> Direction {
    if name.ends_with("_us") || name.ends_with("_ms") || name == "elapsed_ms" {
        return Direction::Info;
    }
    match name {
        // Work the solver/theory had to do: less is better.
        "decisions" | "conflicts" | "lemmas" | "restarts" | "reductions" | "cc_searched"
        | "cc_visited" | "cc_promoted" => Direction::LowerBetter,
        // Quality shares: more is better.
        "h1_share_pm" | "cc_o1" => Direction::HigherBetter,
        _ => {
            // Distribution shape: smaller LBDs, shorter cycles, fewer
            // visited nodes, shorter conflict windows — percentiles and
            // maxima gate downward; raw observation counts follow their
            // counter and are informational here (the counter gates).
            let gated_hist = ["conflict_lbd", "lemma_cycle_len", "cycle_visited"];
            for base in gated_hist {
                for suffix in ["_p50", "_p90", "_p99", "_max"] {
                    if name == format!("{base}{suffix}") {
                        return Direction::LowerBetter;
                    }
                }
            }
            Direction::Info
        }
    }
}

/// One metric's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    pub name: String,
    pub base: u64,
    pub new: u64,
    /// Signed relative change against `max(base, min_base)`.
    pub rel: f64,
    pub verdict: Verdict,
}

/// Full comparison of two stat maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// One row per metric in the union of both maps, sorted by name.
    pub rows: Vec<MetricDiff>,
    /// Names of gated metrics judged [`Verdict::Regressed`].
    pub regressed: Vec<String>,
    /// Names of gated metrics judged [`Verdict::Improved`].
    pub improved: Vec<String>,
}

impl DiffReport {
    /// True when the regression gate should fail.
    pub fn gate_failed(&self) -> bool {
        !self.regressed.is_empty()
    }

    /// Human-readable table: changed metrics first (largest |rel| first),
    /// then a one-line verdict summary.
    pub fn render(&self, all: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>8}  verdict",
            "metric", "base", "new", "delta"
        );
        let mut rows: Vec<&MetricDiff> = self
            .rows
            .iter()
            .filter(|r| all || r.base != r.new)
            .collect();
        rows.sort_by(|a, b| {
            b.rel
                .abs()
                .partial_cmp(&a.rel.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        for r in rows {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12} {:>+7.1}%  {}",
                r.name,
                r.base,
                r.new,
                100.0 * r.rel,
                r.verdict.name()
            );
        }
        if self.gate_failed() {
            let _ = writeln!(out, "\nGATE: regressed: {}", self.regressed.join(", "));
        } else if !self.improved.is_empty() {
            let _ = writeln!(out, "\nGATE: ok (improved: {})", self.improved.join(", "));
        } else {
            let _ = writeln!(out, "\nGATE: ok (all gated metrics within noise)");
        }
        out
    }

    /// Machine-readable NDJSON: one `diffrow` line per changed metric plus
    /// a final `diffgate` line with the overall outcome.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for r in self.rows.iter().filter(|r| r.base != r.new) {
            // Signed permille keeps the line integer-only like every other
            // trace line.
            let rel_pm = (r.rel * 1000.0).round() as i64;
            let _ = writeln!(
                out,
                "{{\"t\":\"diffrow\",\"name\":\"{}\",\"base\":{},\"new\":{},\"rel_pm\":{},\"verdict\":\"{}\"}}",
                r.name,
                r.base,
                r.new,
                rel_pm,
                r.verdict.name()
            );
        }
        let _ = writeln!(
            out,
            "{{\"t\":\"diffgate\",\"failed\":{},\"regressed\":{},\"improved\":{}}}",
            self.gate_failed(),
            self.regressed.len(),
            self.improved.len()
        );
        out
    }
}

/// Compare `new` against `base` under `opts`.
pub fn diff(base: &TraceStats, new: &TraceStats, opts: &DiffOptions) -> DiffReport {
    let mut names: Vec<&String> = base.metrics.keys().chain(new.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let mut report = DiffReport::default();
    for name in names {
        let b = base.get(name);
        let n = new.get(name);
        let denom = b.max(opts.min_base) as f64;
        let rel = (n as f64 - b as f64) / denom;
        let mut dir = direction_of(name);
        if dir == Direction::Info
            && opts.gate_time
            && (name.ends_with("_us") || name.ends_with("_ms"))
        {
            dir = Direction::LowerBetter;
        }
        let verdict = match dir {
            Direction::Info => Verdict::Info,
            _ if rel.abs() <= opts.tolerance => Verdict::WithinNoise,
            Direction::LowerBetter if rel > 0.0 => Verdict::Regressed,
            Direction::HigherBetter if rel < 0.0 => Verdict::Regressed,
            _ => Verdict::Improved,
        };
        match verdict {
            Verdict::Regressed => report.regressed.push(name.clone()),
            Verdict::Improved => report.improved.push(name.clone()),
            _ => {}
        }
        report.rows.push(MetricDiff {
            name: name.clone(),
            base: b,
            new: n,
            rel,
            verdict,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn stats(pairs: &[(&str, u64)]) -> TraceStats {
        TraceStats {
            metrics: pairs
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<BTreeMap<_, _>>(),
        }
    }

    #[test]
    fn identical_stats_gate_clean() {
        let s = stats(&[("decisions", 1000), ("conflicts", 40), ("h1_share_pm", 800)]);
        let report = diff(&s, &s, &DiffOptions::default());
        assert!(!report.gate_failed());
        assert!(report.rows.iter().all(|r| r.rel == 0.0));
    }

    #[test]
    fn regressions_and_improvements_follow_direction() {
        let base = stats(&[
            ("decisions", 1000),
            ("conflicts", 100),
            ("h1_share_pm", 800),
            ("cc_visited", 500),
        ]);
        let new = stats(&[
            ("decisions", 1000),
            ("conflicts", 150),   // +50%: regression (lower is better)
            ("h1_share_pm", 600), // -25%: regression (higher is better)
            ("cc_visited", 300),  // -40%: improvement
        ]);
        let report = diff(&base, &new, &DiffOptions::default());
        assert!(report.gate_failed());
        assert_eq!(report.regressed, vec!["conflicts", "h1_share_pm"]);
        assert_eq!(report.improved, vec!["cc_visited"]);
        let rendered = report.render(false);
        assert!(rendered.contains("GATE: regressed: conflicts, h1_share_pm"));
    }

    #[test]
    fn tolerance_and_min_base_damp_noise() {
        // +19% stays inside the default 20% tolerance.
        let base = stats(&[("conflicts", 100)]);
        let new = stats(&[("conflicts", 119)]);
        assert!(!diff(&base, &new, &DiffOptions::default()).gate_failed());

        // 2 → 5 conflicts is +150% nominally, but the min_base floor of 16
        // reads it as +18.75%: small-count noise, not a regression.
        let base = stats(&[("conflicts", 2)]);
        let new = stats(&[("conflicts", 5)]);
        assert!(!diff(&base, &new, &DiffOptions::default()).gate_failed());

        // A tighter tolerance flips the first case.
        let base = stats(&[("conflicts", 100)]);
        let new = stats(&[("conflicts", 119)]);
        let tight = DiffOptions {
            tolerance: 0.10,
            ..DiffOptions::default()
        };
        assert!(diff(&base, &new, &tight).gate_failed());
    }

    #[test]
    fn time_metrics_gate_only_when_asked() {
        let base = stats(&[("phase_solve_us", 1000), ("wall_us", 2000)]);
        let new = stats(&[("phase_solve_us", 9000), ("wall_us", 9500)]);
        let report = diff(&base, &new, &DiffOptions::default());
        assert!(!report.gate_failed());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Info));
        let timed = DiffOptions {
            gate_time: true,
            ..DiffOptions::default()
        };
        let report = diff(&base, &new, &timed);
        assert!(report.gate_failed());
        assert_eq!(report.regressed, vec!["phase_solve_us", "wall_us"]);
    }

    #[test]
    fn missing_metrics_read_as_zero() {
        // A metric present only in the baseline (new run never restarted):
        // dropping to zero is an improvement for a LowerBetter metric.
        let base = stats(&[("restarts", 50)]);
        let new = stats(&[]);
        let report = diff(&base, &new, &DiffOptions::default());
        assert_eq!(report.improved, vec!["restarts"]);
        // And appearing from zero beyond tolerance regresses.
        let report = diff(&new, &base, &DiffOptions::default());
        assert_eq!(report.regressed, vec!["restarts"]);
    }

    #[test]
    fn ndjson_output_is_flat_and_integer_only() {
        let base = stats(&[("conflicts", 100)]);
        let new = stats(&[("conflicts", 150)]);
        let report = diff(&base, &new, &DiffOptions::default());
        let text = report.to_ndjson();
        for line in text.lines() {
            let map = crate::ndjson::parse_line(line).expect("flat JSON");
            assert!(map.contains_key("t"));
        }
        assert!(text.contains("\"t\":\"diffgate\",\"failed\":true"));
        assert!(text.contains("\"rel_pm\":500"));
    }
}
