//! Zero-dependency metrics primitives: log-linear [`Histogram`]s with
//! percentile queries, the fixed set of pipeline distributions ([`Hists`])
//! fed by the [`Recorder`](crate::Recorder) event path, and a named
//! [`MetricsRegistry`] of counters/gauges/histograms used by long-running
//! harnesses (the batch heartbeat) to stream periodic snapshots.
//!
//! The histogram is HDR-style log-linear: values `0..LINEAR_MAX` get one
//! bucket each (exact), larger values share an octave split into
//! [`SUBBUCKETS`] linear sub-buckets, bounding the relative quantile error
//! at `1/SUBBUCKETS` (6.25%). Buckets are stored sparsely, so an empty or
//! narrow distribution costs a handful of map entries, never a dense array.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::VarClass;

/// Values below this threshold get exact single-value buckets.
const LINEAR_MAX: u64 = 32;
/// Linear sub-buckets per octave above the linear region.
const SUBBUCKETS: u64 = 16;
/// log2 of [`LINEAR_MAX`]; the first octave index of the log region.
const LINEAR_BITS: u32 = 5;
/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = 4;

/// A log-linear histogram over `u64` observations.
///
/// Tracks exact `count`, `sum`, `min`, and `max`; quantiles are answered
/// from the bucket layout with ≤ 1/16 relative error (exact below
/// [`LINEAR_MAX`]). Reported percentiles use each bucket's *upper* bound,
/// so `percentile(p)` never under-reports the true rank-`p` value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse bucket index → count.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index.
fn bucket_of(v: u64) -> u32 {
    if v < LINEAR_MAX {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as u32) & (SUBBUCKETS as u32 - 1);
    LINEAR_MAX as u32 + (msb - LINEAR_BITS) * SUBBUCKETS as u32 + sub
}

/// The largest value mapping to bucket `b` (inverse of [`bucket_of`]).
fn bucket_upper(b: u32) -> u64 {
    if (b as u64) < LINEAR_MAX {
        return b as u64;
    }
    let rel = b - LINEAR_MAX as u32;
    let msb = LINEAR_BITS + rel / SUBBUCKETS as u32;
    let sub = (rel % SUBBUCKETS as u32) as u64;
    let step = 1u64 << (msb - SUB_BITS);
    // Written as `(base - 1) + width` so the top octave's upper bound —
    // exactly `u64::MAX` — computes without overflowing.
    (1u64 << msb) - 1 + (sub + 1) * step
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` in `[0, 1]`: an upper bound on the
    /// `ceil(p·count)`-th smallest observation, tight to the bucket width
    /// (≤ 1/16 relative). Returns 0 on an empty histogram; `p = 0` returns
    /// the minimum, `p ≥ 1` the exact maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 1.0 {
            return self.max;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Never report beyond the recorded extremes.
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    /// Compact sparse encoding `"idx:count,idx:count,…"` for NDJSON export.
    pub fn encode_buckets(&self) -> String {
        let mut out = String::new();
        for (i, (&b, &n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}:{n}");
        }
        out
    }

    /// Rebuilds a histogram from its NDJSON fields. The bucket string must
    /// be the output of [`Histogram::encode_buckets`]; `count`/`sum`/`min`/
    /// `max` are carried exactly, and bucket counts must reconcile with
    /// `count`.
    pub fn decode(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &str,
    ) -> Result<Histogram, String> {
        let mut h = Histogram {
            buckets: BTreeMap::new(),
            count,
            sum,
            min,
            max,
        };
        let mut total = 0u64;
        for part in buckets.split(',').filter(|p| !p.is_empty()) {
            let (b, n) = part
                .split_once(':')
                .ok_or_else(|| format!("bad bucket entry {part:?}"))?;
            let b: u32 = b.parse().map_err(|_| format!("bad bucket index {b:?}"))?;
            let n: u64 = n.parse().map_err(|_| format!("bad bucket count {n:?}"))?;
            if h.buckets.insert(b, n).is_some() {
                return Err(format!("duplicate bucket index {b}"));
            }
            total += n;
        }
        if total != count {
            return Err(format!(
                "bucket counts sum to {total}, histogram count is {count}"
            ));
        }
        Ok(h)
    }
}

/// The fixed set of pipeline distributions, histogram-izing what the
/// [`Counters`](crate::Counters) track only as totals. Every field is fed
/// by the recorder's event path; adding a field here forces updates to the
/// NDJSON round-trip (compile-guard tested, like `Counters`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hists {
    /// LBD of each learnt conflict clause.
    pub conflict_lbd: Histogram,
    /// Edge count of each EOG cycle blocked by a theory lemma.
    pub lemma_cycle_len: Histogram,
    /// Nodes visited by each cycle check that ran the bounded search
    /// (O(1)-accepted checks are not observed — they visit nothing).
    pub cycle_visited: Histogram,
    /// Restart interval: conflicts between consecutive restarts.
    pub restart_interval: Histogram,
    /// Wall-clock microseconds of each incremental-sweep frame solve.
    pub frame_solve_us: Histogram,
    /// Imported-clause hits (propagations/conflicts on foreign clauses)
    /// per share exchange, observed once per exchange that had any.
    pub sh_import_hits: Histogram,
    /// Decisions of each class inside one conflict-to-conflict window,
    /// indexed by `VarClass::index()`: at every conflict, each class's
    /// decision count since the previous conflict is observed (zero counts
    /// are skipped — an absent class says nothing about its distances).
    pub dec_to_conflict: [Histogram; VarClass::COUNT],
}

impl Hists {
    /// `(name, histogram)` pairs for every distribution, in stable order.
    /// Names are the NDJSON `hist` line keys.
    pub fn named(&self) -> Vec<(String, &Histogram)> {
        let mut out: Vec<(String, &Histogram)> = vec![
            ("conflict_lbd".into(), &self.conflict_lbd),
            ("lemma_cycle_len".into(), &self.lemma_cycle_len),
            ("cycle_visited".into(), &self.cycle_visited),
            ("restart_interval".into(), &self.restart_interval),
            ("frame_solve_us".into(), &self.frame_solve_us),
            ("sh_import_hits".into(), &self.sh_import_hits),
        ];
        for cls in VarClass::all() {
            out.push((
                format!("d2c_{}", cls.name()),
                &self.dec_to_conflict[cls.index()],
            ));
        }
        out
    }

    /// Mutable lookup by NDJSON name (inverse of [`Hists::named`]).
    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        match name {
            "conflict_lbd" => Some(&mut self.conflict_lbd),
            "lemma_cycle_len" => Some(&mut self.lemma_cycle_len),
            "cycle_visited" => Some(&mut self.cycle_visited),
            "restart_interval" => Some(&mut self.restart_interval),
            "frame_solve_us" => Some(&mut self.frame_solve_us),
            "sh_import_hits" => Some(&mut self.sh_import_hits),
            _ => {
                let cls = VarClass::all()
                    .into_iter()
                    .find(|c| name == format!("d2c_{}", c.name()))?;
                Some(&mut self.dec_to_conflict[cls.index()])
            }
        }
    }

    /// Folds another set of distributions into this one.
    pub fn merge(&mut self, other: &Hists) {
        // Exhaustive destructuring: adding a field without merging it here
        // fails the build.
        let Hists {
            conflict_lbd,
            lemma_cycle_len,
            cycle_visited,
            restart_interval,
            frame_solve_us,
            sh_import_hits,
            dec_to_conflict,
        } = other;
        self.conflict_lbd.merge(conflict_lbd);
        self.lemma_cycle_len.merge(lemma_cycle_len);
        self.cycle_visited.merge(cycle_visited);
        self.restart_interval.merge(restart_interval);
        self.frame_solve_us.merge(frame_solve_us);
        self.sh_import_hits.merge(sh_import_hits);
        for (mine, theirs) in self.dec_to_conflict.iter_mut().zip(dec_to_conflict) {
            mine.merge(theirs);
        }
    }
}

/// A named registry of counters, gauges, and histograms for long-running
/// harnesses. Unlike the [`Recorder`](crate::Recorder)'s fixed counter
/// struct, keys here are free-form strings, so a harness can publish
/// whatever its heartbeat needs without schema changes.
///
/// All values are `u64` — the NDJSON trace grammar is integer-only, and
/// every batch metric (task counts, bytes, microseconds) fits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Observes `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// One flat NDJSON `metrics` line: every counter and gauge verbatim,
    /// every histogram as `<name>_p50/p90/p99/max/count`. `seq` and
    /// `elapsed_ms` order and time-stamp the snapshot stream.
    pub fn snapshot_line(&self, seq: u64, elapsed_ms: u64) -> String {
        let mut out = String::from("{\"t\":\"metrics\"");
        let _ = write!(out, ",\"seq\":{seq},\"elapsed_ms\":{elapsed_ms}");
        for (k, v) in &self.counters {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        for (k, v) in &self.gauges {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        for (k, h) in &self.hists {
            let _ = write!(
                out,
                ",\"{k}_p50\":{},\"{k}_p90\":{},\"{k}_p99\":{},\"{k}_max\":{},\"{k}_count\":{}",
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max(),
                h.count()
            );
        }
        out.push('}');
        out
    }
}

/// Current resident-set size in bytes, read from `/proc/self/statm` where
/// available (Linux). Returns 0 elsewhere — an estimate, never a hard
/// dependency.
pub fn rss_bytes() -> u64 {
    if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
        if let Some(pages) = statm.split_whitespace().nth(1) {
            if let Ok(pages) = pages.parse::<u64>() {
                return pages * 4096;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_invertible() {
        let mut prev_bucket = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= prev_bucket, "bucket index regressed at {v}");
            prev_bucket = b;
            assert!(bucket_upper(b) >= v, "upper bound below value at {v}");
            if v < LINEAR_MAX {
                assert_eq!(bucket_upper(b), v, "linear region must be exact");
            } else {
                // Relative error of the upper bound is bounded by the
                // sub-bucket width.
                assert!(bucket_upper(b) - v <= v / SUBBUCKETS + 1);
            }
        }
        // Spot-check the large end.
        for v in [1u64 << 32, u64::MAX / 2, u64::MAX] {
            assert!(bucket_upper(bucket_of(v)) >= v);
        }
    }

    #[test]
    fn percentiles_track_sorted_oracle() {
        let mut h = Histogram::new();
        let mut vals: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            // Deterministic spread over several octaves.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            let v = x % 50_000;
            h.observe(v);
            vals.push(v);
        }
        vals.sort_unstable();
        for &(p, _) in &[(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
            let rank = ((p * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let oracle = vals[rank - 1];
            let got = h.percentile(p);
            assert!(got >= oracle, "p{p}: {got} under-reports oracle {oracle}");
            assert!(
                got <= oracle + oracle / (SUBBUCKETS - 1) + 1,
                "p{p}: {got} too far above oracle {oracle}"
            );
        }
        assert_eq!(h.percentile(1.0), *vals.last().unwrap());
        assert_eq!(h.max(), *vals.last().unwrap());
        assert_eq!(h.min(), vals[0]);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), vals.iter().sum::<u64>());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.encode_buckets(), "");
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            let v = v * 37 % 9001;
            if v % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            both.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
        // Merging into empty clones the source.
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 31, 32, 100, 40_000, 1 << 40] {
            h.observe(v);
        }
        let back = Histogram::decode(h.count(), h.sum(), h.min(), h.max(), &h.encode_buckets())
            .expect("decode");
        assert_eq!(back, h);
        // Tampered bucket counts are rejected.
        assert!(Histogram::decode(3, 10, 0, 5, "0:1,2:1").is_err());
        assert!(Histogram::decode(2, 10, 0, 5, "0:1,0:1").is_err());
        assert!(Histogram::decode(1, 1, 1, 1, "nonsense").is_err());
    }

    #[test]
    fn hists_named_and_by_name_agree() {
        let mut hists = Hists::default();
        let names: Vec<String> = hists.named().iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names.len(), 6 + VarClass::COUNT);
        for name in &names {
            hists
                .by_name_mut(name)
                .unwrap_or_else(|| panic!("{name} not addressable"))
                .observe(7);
        }
        for (name, h) in hists.named() {
            assert_eq!(h.count(), 1, "{name} not fed through by_name_mut");
        }
        assert!(hists.by_name_mut("no_such_hist").is_none());
    }

    #[test]
    fn registry_snapshot_line_is_flat_json() {
        let mut reg = MetricsRegistry::new();
        reg.add("tasks_done", 3);
        reg.add("tasks_done", 1);
        reg.set_gauge("rss_bytes", 1 << 20);
        for v in [10u64, 20, 30] {
            reg.observe("frame_us", v);
        }
        assert_eq!(reg.counter("tasks_done"), 4);
        assert_eq!(reg.gauge("rss_bytes"), Some(1 << 20));
        assert_eq!(reg.hist("frame_us").unwrap().count(), 3);
        let line = reg.snapshot_line(2, 1500);
        let map = crate::ndjson::parse_line(&line).expect("flat JSON");
        assert_eq!(map.get("t").unwrap().as_str(), Some("metrics"));
        assert_eq!(map.get("seq").unwrap().as_u64(), Some(2));
        assert_eq!(map.get("tasks_done").unwrap().as_u64(), Some(4));
        assert_eq!(map.get("frame_us_count").unwrap().as_u64(), Some(3));
        assert!(map.get("frame_us_p50").unwrap().as_u64().unwrap() >= 20);
    }
}
