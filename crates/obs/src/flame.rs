//! Collapsed-stack flamegraph export for phase spans.
//!
//! Emits the `stack;frames;joined value` format consumed by `flamegraph.pl`
//! and inferno: one line per distinct span stack, value = *self* time in
//! microseconds (span duration minus its children's durations), so frame
//! widths add up instead of double-counting nested spans.
//!
//! Stacks are reconstructed from the snapshot's span order: the recorder
//! appends spans in open order and tags each with its per-thread nesting
//! depth, so within one member's stream a span of depth `d` is a child of
//! the most recent span of depth `d-1`. Streams of different portfolio
//! members are disentangled by the member label and rooted at it.

use std::collections::BTreeMap;

use crate::recorder::{SpanRecord, TraceSnapshot};

fn frame_name(s: &SpanRecord) -> String {
    match &s.label {
        Some(l) => format!("{}[{}]", s.phase.name(), l),
        None => s.phase.name().to_owned(),
    }
}

/// `(stack, self_us)` entries in deterministic (lexicographic) order.
/// Stacks are `;`-joined frames rooted at the member name (`main` for the
/// unlabeled stream); equal stacks are merged by summing self time.
/// Zero-self-time stacks are kept — a frame that only dispatches to
/// children still belongs in the graph.
pub fn stack_entries(snap: &TraceSnapshot) -> Vec<(String, u64)> {
    let mut acc: BTreeMap<String, u64> = BTreeMap::new();
    // Group spans by member, preserving record order within each group.
    let mut by_member: BTreeMap<&str, Vec<&SpanRecord>> = BTreeMap::new();
    for s in snap.spans.iter().filter(|s| s.closed) {
        by_member
            .entry(s.member.as_deref().unwrap_or("main"))
            .or_default()
            .push(s);
    }
    for (member, spans) in by_member {
        // Open stack of (frame, dur_us, children_us).
        let mut stack: Vec<(String, u64, u64)> = Vec::new();
        let mut names: Vec<String> = vec![member.to_owned()];
        let close_top = |stack: &mut Vec<(String, u64, u64)>,
                         names: &mut Vec<String>,
                         acc: &mut BTreeMap<String, u64>| {
            let (_, dur, children) = stack.pop().expect("non-empty stack");
            let self_us = dur.saturating_sub(children);
            *acc.entry(names.join(";")).or_insert(0) += self_us;
            names.pop();
            if let Some(parent) = stack.last_mut() {
                parent.2 += dur;
            }
        };
        for s in spans {
            // A span at depth d closes everything at depth >= d.
            while stack.len() > s.depth as usize {
                close_top(&mut stack, &mut names, &mut acc);
            }
            let name = frame_name(s);
            names.push(name.clone());
            stack.push((name, s.dur_us, 0));
        }
        while !stack.is_empty() {
            close_top(&mut stack, &mut names, &mut acc);
        }
    }
    acc.into_iter().collect()
}

/// The collapsed-stack file: one `stack value` line per entry.
pub fn collapsed(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for (stack, self_us) in stack_entries(snap) {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&self_us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Phase, SpanRecord};

    fn span(
        phase: Phase,
        label: Option<&str>,
        member: Option<&str>,
        depth: u32,
        dur_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            phase,
            label: label.map(str::to_owned),
            member: member.map(str::to_owned),
            depth,
            start_us: 0,
            dur_us,
            closed: true,
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let snap = TraceSnapshot {
            spans: vec![
                span(Phase::Solve, None, None, 0, 100),
                span(Phase::Blast, None, None, 1, 30),
                span(Phase::Blast, Some("guards"), None, 1, 20),
            ],
            ..TraceSnapshot::default()
        };
        let entries = stack_entries(&snap);
        let get = |stack: &str| {
            entries
                .iter()
                .find(|(s, _)| s == stack)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing stack {stack:?} in {entries:?}"))
        };
        assert_eq!(get("main;solve"), 50);
        assert_eq!(get("main;solve;blast"), 30);
        assert_eq!(get("main;solve;blast[guards]"), 20);
        // Total self time equals the root's duration.
        assert_eq!(entries.iter().map(|(_, v)| v).sum::<u64>(), 100);
    }

    #[test]
    fn sibling_roots_and_members_are_disentangled() {
        let snap = TraceSnapshot {
            spans: vec![
                span(Phase::Encode, Some("sc"), None, 0, 10),
                span(Phase::Solve, None, None, 0, 40),
                span(Phase::Solve, None, Some("zpre"), 0, 40),
                span(Phase::Solve, None, Some("baseline"), 0, 35),
            ],
            ..TraceSnapshot::default()
        };
        let text = collapsed(&snap);
        assert!(text.contains("main;encode[sc] 10\n"));
        assert!(text.contains("main;solve 40\n"));
        assert!(text.contains("zpre;solve 40\n"));
        assert!(text.contains("baseline;solve 35\n"));
    }

    #[test]
    fn equal_stacks_merge_and_clock_skew_saturates() {
        let snap = TraceSnapshot {
            spans: vec![
                // Child reports longer than its parent (clock granularity):
                // self time saturates at 0 instead of wrapping.
                span(Phase::Solve, None, None, 0, 10),
                span(Phase::Blast, None, None, 1, 12),
                // A second identical top-level solve merges into the stack.
                span(Phase::Solve, None, None, 0, 5),
            ],
            ..TraceSnapshot::default()
        };
        let entries = stack_entries(&snap);
        assert_eq!(
            entries,
            vec![
                ("main;solve".to_string(), 5),
                ("main;solve;blast".to_string(), 12),
            ]
        );
    }
}
