//! `zpre-obs` — zero-dependency observability for the ZPRE pipeline.
//!
//! Three layers:
//!
//! 1. **Phase spans** ([`Recorder::span`], [`Span`]): hierarchical wall-clock
//!    profile over parse → unroll → SSA → encode (per memory model) →
//!    bit-blast → solve → validate → certify → replay.
//! 2. **Solver/theory events** ([`EventSink`], [`Event`]): decisions tagged by
//!    interference class (external-RF / internal-RF / WS / other), conflicts
//!    with LBD, order-theory lemmas with EOG-cycle length, restarts, and
//!    learnt-DB reductions. The producers hold an `Option<Arc<dyn
//!    EventSink>>`; tracing disabled is a single branch on that `Option`.
//!    A sampling knob ([`TraceConfig::decision_sample`]) bounds trace size
//!    while per-class counters stay exact.
//! 3. **Export**: NDJSON traces ([`ndjson::to_ndjson`], validated by
//!    [`ndjson::validate`]) and a human ASCII profile
//!    ([`report::profile_report`]).
//! 4. **Analysis**: distribution metrics ([`metrics::Histogram`], fed by the
//!    recorder alongside the exact counters), trace loading/aggregation
//!    ([`analyze`]), collapsed-stack flamegraph export ([`flame`]), and
//!    trace comparison with a regression gate ([`diff`]).
//!
//! The crate is intentionally free of dependencies (std only) so every layer
//! of the workspace — including `zpre-sat`, which otherwise depends on
//! nothing — can link it without cycles.

pub mod analyze;
pub mod diff;
pub mod event;
pub mod flame;
pub mod metrics;
pub mod ndjson;
pub mod recorder;
pub mod report;

pub use diff::{DiffOptions, DiffReport, Verdict};
pub use event::{Event, EventSink, VarClass};
pub use metrics::{Histogram, Hists, MetricsRegistry};
pub use recorder::{
    Counters, EventKind, EventRecord, MemberRecord, Phase, Recorder, Span, SpanRecord, TraceConfig,
    TraceSnapshot,
};
pub use report::profile_report;
