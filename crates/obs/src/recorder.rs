//! Thread-safe trace recorder: hierarchical phase spans, exact per-class
//! counters, sampled event stream, and per-member portfolio telemetry.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use crate::event::{Event, EventSink, VarClass};
use crate::metrics::Hists;

/// Pipeline phases tracked by the recorder. One variant per stage named in the
/// observability plan; `Encode` spans carry the memory model in their label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Parse,
    Unroll,
    Ssa,
    Encode,
    Blast,
    Solve,
    Validate,
    Certify,
    Replay,
    /// One task of a resilient batch run (`zpre-cli batch`); the span label
    /// carries the task key (program × memory model × mode).
    Batch,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Unroll => "unroll",
            Phase::Ssa => "ssa",
            Phase::Encode => "encode",
            Phase::Blast => "blast",
            Phase::Solve => "solve",
            Phase::Validate => "validate",
            Phase::Certify => "certify",
            Phase::Replay => "replay",
            Phase::Batch => "batch",
        }
    }

    pub fn from_name(s: &str) -> Option<Phase> {
        match s {
            "parse" => Some(Phase::Parse),
            "unroll" => Some(Phase::Unroll),
            "ssa" => Some(Phase::Ssa),
            "encode" => Some(Phase::Encode),
            "blast" => Some(Phase::Blast),
            "solve" => Some(Phase::Solve),
            "validate" => Some(Phase::Validate),
            "certify" => Some(Phase::Certify),
            "replay" => Some(Phase::Replay),
            "batch" => Some(Phase::Batch),
            _ => None,
        }
    }

    pub fn all() -> [Phase; 10] {
        [
            Phase::Parse,
            Phase::Unroll,
            Phase::Ssa,
            Phase::Encode,
            Phase::Blast,
            Phase::Solve,
            Phase::Validate,
            Phase::Certify,
            Phase::Replay,
            Phase::Batch,
        ]
    }
}

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Keep individual events (decisions, conflicts, …) in memory for NDJSON
    /// export. Counters are maintained regardless.
    pub events: bool,
    /// Record every `decision_sample`-th decision event (1 = all). Sampled-out
    /// decisions still hit the exact counters; the summary reports how many
    /// event lines were dropped by sampling.
    pub decision_sample: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events: true,
            decision_sample: 1,
        }
    }
}

/// A completed (or still-open) phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub phase: Phase,
    /// Optional detail, e.g. the memory model an encode span ran under.
    pub label: Option<String>,
    /// Portfolio member that opened the span, if any.
    pub member: Option<String>,
    /// Nesting depth within the opening thread (0 = top level).
    pub depth: u32,
    /// Microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds; meaningful once `closed`.
    pub dur_us: u64,
    pub closed: bool,
}

/// One recorded event with global sequence number and member attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    pub seq: u64,
    pub member: Option<String>,
    pub kind: EventKind,
}

/// Recorded event kinds; `Decision` carries the resolved class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Decision {
        var: u32,
        class: VarClass,
        level: u32,
        guided: bool,
    },
    Conflict {
        level: u32,
        lbd: u32,
    },
    TheoryLemma {
        cycle_len: u32,
    },
    Restart {
        /// Conflicts since the previous restart (the restart interval).
        conflicts: u64,
    },
    Reduction {
        removed: u64,
    },
}

/// Exact counters, maintained for every event whether or not the event stream
/// is enabled or sampled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Decisions per [`VarClass`], indexed by `VarClass::index()`.
    pub decisions: [u64; VarClass::COUNT],
    /// Guide-driven decisions per class.
    pub guided: [u64; VarClass::COUNT],
    pub conflicts: u64,
    pub theory_lemmas: u64,
    /// Sum of EOG cycle lengths over all theory lemmas (for mean cycle length).
    pub lemma_cycle_edges: u64,
    pub restarts: u64,
    pub reductions: u64,
    pub clauses_removed: u64,
    /// EOG cycle checks run by the order theory (one per asserted edge).
    pub cycle_checks: u64,
    /// Cycle checks accepted in O(1) by the topological-level invariant.
    pub cycle_accepted_o1: u64,
    /// Cycle checks that ran the bounded two-way search.
    pub cycle_searched: u64,
    /// Nodes visited across all cycle-check searches.
    pub cycle_visited: u64,
    /// Node-level promotions performed by cycle-check forward passes.
    pub cycle_promoted: u64,
    /// Decision events dropped by the sampling knob (still counted above).
    pub dropped_events: u64,
    /// Frame solves of an incremental bound sweep.
    pub frames: u64,
    /// Learnt clauses already in the database at frame-solve entry, summed
    /// over frames — the state reuse an incremental sweep buys.
    pub frame_reused_learnts: u64,
    /// Conflicts spent by earlier frames at frame-solve entry, summed over
    /// frames.
    pub frame_reused_conflicts: u64,
    /// Batch-harness tasks started.
    pub batch_tasks: u64,
    /// Batch-harness retries (re-runs of a rung after exhaustion, before
    /// moving down the ladder).
    pub batch_retries: u64,
    /// Batch-harness degradations (moves to a lower rung of the ladder).
    pub batch_degraded: u64,
    /// Batch-harness checkpoint records appended to the journal.
    pub batch_checkpoints: u64,
    /// Clauses exported to the portfolio share pool (any class).
    pub sh_exported: u64,
    /// Subset of `sh_exported` that were order-theory cycle lemmas.
    pub sh_exported_theory: u64,
    /// Subset of `sh_exported` that touched external-RF variables.
    pub sh_exported_rf: u64,
    /// Foreign clauses imported and attached by portfolio members.
    pub sh_imported: u64,
    /// Foreign clauses rejected at export or import (duplicate, ring
    /// overrun, root-satisfied, policy-filtered).
    pub sh_dropped: u64,
    /// Times an imported clause propagated or conflicted in its importer.
    pub sh_import_hits: u64,
    /// Interference pruning: rf pairs removed by the static pass (beyond
    /// plain candidate filtering).
    pub pr_rf_pruned: u64,
    /// Interference pruning: rf selectors the encoder still emits.
    pub pr_rf_kept: u64,
    /// Interference pruning: ws pairs with a statically fixed polarity.
    pub pr_ws_pruned: u64,
    /// Interference pruning: ws pairs demoted to plain ordering atoms by
    /// mutual exclusion.
    pub pr_ws_serialized: u64,
    /// Interference pruning: reads resolved directly in Φ_ssa.
    pub pr_reads_resolved: u64,
    /// Interference pruning: shared variables local to one thread.
    pub pr_local_vars: u64,
}

impl Counters {
    pub fn total_decisions(&self) -> u64 {
        self.decisions.iter().sum()
    }

    pub fn interference_decisions(&self) -> u64 {
        VarClass::all()
            .iter()
            .filter(|c| c.is_interference())
            .map(|c| self.decisions[c.index()])
            .sum()
    }
}

/// Telemetry for one portfolio member, recorded by the portfolio engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemberRecord {
    pub name: String,
    pub strategy: String,
    /// "safe" / "unsafe" / "unknown" / "error".
    pub verdict: String,
    pub winner: bool,
    pub cancelled: bool,
    /// Decision count reached by this member (depth at cancellation for
    /// losers).
    pub decisions: u64,
    pub conflicts: u64,
    pub time_us: u64,
    /// Quarantine / failure reason, if any.
    pub error: Option<String>,
}

/// Immutable snapshot of everything a recorder captured.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    pub decision_sample: u32,
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    pub members: Vec<MemberRecord>,
    pub counters: Counters,
    /// Distribution metrics (histograms) fed alongside the counters.
    pub hists: Hists,
}

struct Inner {
    cfg: TraceConfig,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    members: Vec<MemberRecord>,
    /// Raw solver var index -> class, installed after encoding.
    classes: Vec<VarClass>,
    counters: Counters,
    hists: Hists,
    /// Per-member decisions-per-class since that member's last conflict —
    /// the open conflict window behind the decision-to-conflict-distance
    /// histograms. Keyed by member label (`None` = the unlabeled stream).
    conflict_window: HashMap<Option<String>, [u64; VarClass::COUNT]>,
    /// Global event sequence; monotone across all threads (one mutex).
    seq: u64,
    /// Per-thread span nesting depth.
    depth: HashMap<ThreadId, u32>,
}

struct Shared {
    epoch: Instant,
    inner: Mutex<Inner>,
}

/// Cheaply cloneable handle to a shared trace buffer. Clones share the same
/// buffer; [`Recorder::member_labeled`] produces a clone whose spans and
/// events carry a member label, which is how portfolio threads attribute
/// their activity without separate buffers.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
    member: Option<Arc<str>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("member", &self.member)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(TraceConfig::default())
    }
}

impl Recorder {
    pub fn new(cfg: TraceConfig) -> Recorder {
        let sample = cfg.decision_sample.max(1);
        Recorder {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                inner: Mutex::new(Inner {
                    cfg: TraceConfig {
                        decision_sample: sample,
                        ..cfg
                    },
                    spans: Vec::new(),
                    events: Vec::new(),
                    members: Vec::new(),
                    classes: Vec::new(),
                    counters: Counters::default(),
                    hists: Hists::default(),
                    conflict_window: HashMap::new(),
                    seq: 0,
                    depth: HashMap::new(),
                }),
            }),
            member: None,
        }
    }

    /// A clone whose recorded spans/events are attributed to `member`.
    pub fn member_labeled(&self, member: &str) -> Recorder {
        Recorder {
            shared: Arc::clone(&self.shared),
            member: Some(Arc::from(member)),
        }
    }

    fn member_string(&self) -> Option<String> {
        self.member.as_deref().map(str::to_owned)
    }

    /// Install the solver-variable class table (index = raw var). Overwrites
    /// any previous table; unknown vars default to [`VarClass::Other`].
    pub fn set_var_classes(&self, classes: Vec<VarClass>) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.classes = classes;
    }

    /// Open a phase span. The span closes (fills its duration) on drop or via
    /// [`Span::close`].
    pub fn span(&self, phase: Phase) -> Span {
        self.span_labeled(phase, None)
    }

    /// Open a phase span with a detail label (e.g. the memory model name).
    pub fn span_labeled(&self, phase: Phase, label: Option<&str>) -> Span {
        let start = Instant::now();
        let start_us = start.duration_since(self.shared.epoch).as_micros() as u64;
        let tid = std::thread::current().id();
        let mut inner = self.shared.inner.lock().unwrap();
        let depth = {
            let d = inner.depth.entry(tid).or_insert(0);
            let cur = *d;
            *d += 1;
            cur
        };
        let idx = inner.spans.len();
        inner.spans.push(SpanRecord {
            phase,
            label: label.map(str::to_owned),
            member: self.member_string(),
            depth,
            start_us,
            dur_us: 0,
            closed: false,
        });
        Span {
            shared: Arc::clone(&self.shared),
            idx,
            start,
            tid,
            done: false,
        }
    }

    /// Record one frame solve of an incremental bound sweep together with
    /// the solver state it found waiting: learnt clauses in the database and
    /// conflicts spent by earlier frames.
    pub fn record_frame(&self, reused_learnts: u64, reused_conflicts: u64) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.counters.frames += 1;
        inner.counters.frame_reused_learnts += reused_learnts;
        inner.counters.frame_reused_conflicts += reused_conflicts;
    }

    /// Record the wall-clock duration of one completed frame solve into the
    /// per-frame solve-time histogram (the [`Recorder::record_frame`]
    /// counterpart called once the solve returns).
    pub fn record_frame_solved(&self, solve_us: u64) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.hists.frame_solve_us.observe(solve_us);
    }

    /// Record the start of one batch-harness task.
    pub fn record_batch_task(&self) {
        self.shared.inner.lock().unwrap().counters.batch_tasks += 1;
    }

    /// Record one batch-harness retry (same ladder rung, after backoff).
    pub fn record_batch_retry(&self) {
        self.shared.inner.lock().unwrap().counters.batch_retries += 1;
    }

    /// Record one batch-harness degradation (move to a lower ladder rung).
    pub fn record_batch_degraded(&self) {
        self.shared.inner.lock().unwrap().counters.batch_degraded += 1;
    }

    /// Record one checkpoint line appended to the batch journal.
    pub fn record_batch_checkpoint(&self) {
        self.shared.inner.lock().unwrap().counters.batch_checkpoints += 1;
    }

    /// Record the static interference-pruning pass's statistics for one
    /// encoding: pairs pruned/kept, demoted ws pairs, resolved reads, and
    /// thread-local variables. Accumulates across encodings (sweep frames,
    /// portfolio members).
    #[allow(clippy::too_many_arguments)]
    pub fn record_prune(
        &self,
        rf_pruned: u64,
        rf_kept: u64,
        ws_pruned: u64,
        ws_serialized: u64,
        reads_resolved: u64,
        local_vars: u64,
    ) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.counters.pr_rf_pruned += rf_pruned;
        inner.counters.pr_rf_kept += rf_kept;
        inner.counters.pr_ws_pruned += ws_pruned;
        inner.counters.pr_ws_serialized += ws_serialized;
        inner.counters.pr_reads_resolved += reads_resolved;
        inner.counters.pr_local_vars += local_vars;
    }

    /// Record one portfolio member's telemetry.
    pub fn record_member(&self, rec: MemberRecord) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.members.push(rec);
    }

    /// Snapshot the current contents. Open spans appear with `closed: false`.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.shared.inner.lock().unwrap();
        TraceSnapshot {
            decision_sample: inner.cfg.decision_sample,
            spans: inner.spans.clone(),
            events: inner.events.clone(),
            members: inner.members.clone(),
            counters: inner.counters.clone(),
            hists: inner.hists.clone(),
        }
    }

    /// Distribution metrics only (cheaper than a full snapshot).
    pub fn hists(&self) -> Hists {
        self.shared.inner.lock().unwrap().hists.clone()
    }

    /// Exact counters only (cheaper than a full snapshot).
    pub fn counters(&self) -> Counters {
        self.shared.inner.lock().unwrap().counters.clone()
    }
}

impl EventSink for Recorder {
    fn emit(&self, ev: Event) {
        let mut inner = self.shared.inner.lock().unwrap();
        let inner = &mut *inner;
        let kind = match ev {
            Event::Decision { var, level, guided } => {
                let class = inner
                    .classes
                    .get(var as usize)
                    .copied()
                    .unwrap_or(VarClass::Other);
                let n = inner.counters.total_decisions();
                inner.counters.decisions[class.index()] += 1;
                if guided {
                    inner.counters.guided[class.index()] += 1;
                }
                // Open conflict window: this member made one more decision
                // of `class` since its last conflict.
                inner
                    .conflict_window
                    .entry(self.member_string())
                    .or_default()[class.index()] += 1;
                if inner.cfg.events && !n.is_multiple_of(inner.cfg.decision_sample as u64) {
                    inner.counters.dropped_events += 1;
                    return;
                }
                EventKind::Decision {
                    var,
                    class,
                    level,
                    guided,
                }
            }
            Event::Conflict { level, lbd } => {
                inner.counters.conflicts += 1;
                inner.hists.conflict_lbd.observe(lbd as u64);
                // Close this member's conflict window: observe each class's
                // decision count since the previous conflict. Classes that
                // made no decisions in the window are skipped — absence is
                // not a distance of zero.
                if let Some(window) = inner.conflict_window.remove(&self.member_string()) {
                    for cls in VarClass::all() {
                        let n = window[cls.index()];
                        if n > 0 {
                            inner.hists.dec_to_conflict[cls.index()].observe(n);
                        }
                    }
                }
                EventKind::Conflict { level, lbd }
            }
            Event::TheoryLemma { cycle_len } => {
                inner.counters.theory_lemmas += 1;
                inner.counters.lemma_cycle_edges += cycle_len as u64;
                inner.hists.lemma_cycle_len.observe(cycle_len as u64);
                EventKind::TheoryLemma { cycle_len }
            }
            Event::Restart { conflicts } => {
                inner.counters.restarts += 1;
                inner.hists.restart_interval.observe(conflicts);
                EventKind::Restart { conflicts }
            }
            Event::Reduction { removed } => {
                inner.counters.reductions += 1;
                inner.counters.clauses_removed += removed;
                EventKind::Reduction { removed }
            }
            Event::CycleCheck {
                visited,
                promoted,
                accepted_o1,
            } => {
                // Counter-only: fires once per asserted ordering atom, so it
                // is never pushed onto the event stream.
                inner.counters.cycle_checks += 1;
                if accepted_o1 {
                    inner.counters.cycle_accepted_o1 += 1;
                } else {
                    inner.counters.cycle_searched += 1;
                    inner.hists.cycle_visited.observe(visited as u64);
                }
                inner.counters.cycle_visited += visited as u64;
                inner.counters.cycle_promoted += promoted as u64;
                return;
            }
            Event::Share {
                exported,
                exported_theory,
                exported_rf,
                imported,
                dropped,
                import_hits,
            } => {
                // Counter-only deltas batched per exchange point; the
                // import-hit histogram observes the batch size so the
                // distribution of hits-per-exchange survives aggregation.
                inner.counters.sh_exported += exported;
                inner.counters.sh_exported_theory += exported_theory;
                inner.counters.sh_exported_rf += exported_rf;
                inner.counters.sh_imported += imported;
                inner.counters.sh_dropped += dropped;
                inner.counters.sh_import_hits += import_hits;
                if import_hits > 0 {
                    inner.hists.sh_import_hits.observe(import_hits);
                }
                return;
            }
        };
        if !inner.cfg.events {
            return;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push(EventRecord {
            seq,
            member: self.member_string(),
            kind,
        });
    }
}

/// RAII guard for an open phase span. Closing fills in the duration; dropping
/// without an explicit [`Span::close`] closes it too.
pub struct Span {
    shared: Arc<Shared>,
    idx: usize,
    start: Instant,
    tid: ThreadId,
    done: bool,
}

impl Span {
    /// Close the span now (identical to dropping, but reads better at call
    /// sites that want an explicit end point).
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur_us = self.start.elapsed().as_micros() as u64;
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(d) = inner.depth.get_mut(&self.tid) {
            *d = d.saturating_sub(1);
        }
        if let Some(rec) = inner.spans.get_mut(self.idx) {
            rec.dur_us = dur_us;
            rec.closed = true;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_nesting_depths_and_order() {
        let rec = Recorder::default();
        {
            let _outer = rec.span(Phase::Encode);
            {
                let _inner = rec.span(Phase::Blast);
            }
            let _sibling = rec.span_labeled(Phase::Blast, Some("guards"));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].phase, Phase::Encode);
        assert_eq!(snap.spans[0].depth, 0);
        assert_eq!(snap.spans[1].phase, Phase::Blast);
        assert_eq!(snap.spans[1].depth, 1);
        assert_eq!(snap.spans[2].depth, 1);
        assert_eq!(snap.spans[2].label.as_deref(), Some("guards"));
        assert!(snap.spans.iter().all(|s| s.closed));
        // Spans are recorded in open order; starts are monotone.
        assert!(snap.spans[0].start_us <= snap.spans[1].start_us);
        assert!(snap.spans[1].start_us <= snap.spans[2].start_us);
    }

    #[test]
    fn decision_classes_resolved_from_table() {
        let rec = Recorder::default();
        rec.set_var_classes(vec![
            VarClass::ExternalRf,
            VarClass::InternalRf,
            VarClass::Ws,
        ]);
        for var in 0..5u32 {
            rec.emit(Event::Decision {
                var,
                level: var + 1,
                guided: var < 3,
            });
        }
        let snap = rec.snapshot();
        let classes: Vec<VarClass> = snap
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Decision { class, .. } => class,
                _ => panic!("expected decisions"),
            })
            .collect();
        assert_eq!(
            classes,
            vec![
                VarClass::ExternalRf,
                VarClass::InternalRf,
                VarClass::Ws,
                VarClass::Other,
                VarClass::Other,
            ]
        );
        assert_eq!(snap.counters.total_decisions(), 5);
        assert_eq!(snap.counters.interference_decisions(), 3);
        assert_eq!(snap.counters.guided.iter().sum::<u64>(), 3);
    }

    #[test]
    fn sampling_counts_everything_records_subset() {
        let rec = Recorder::new(TraceConfig {
            events: true,
            decision_sample: 10,
        });
        for var in 0..100u32 {
            rec.emit(Event::Decision {
                var,
                level: 1,
                guided: false,
            });
        }
        rec.emit(Event::Conflict { level: 3, lbd: 2 });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.total_decisions(), 100);
        assert_eq!(snap.counters.dropped_events, 90);
        let decisions = snap
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Decision { .. }))
            .count();
        assert_eq!(decisions, 10);
        // Non-decision events are never sampled out.
        assert_eq!(snap.counters.conflicts, 1);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Conflict { .. })));
    }

    #[test]
    fn counters_without_event_storage() {
        let rec = Recorder::new(TraceConfig {
            events: false,
            decision_sample: 1,
        });
        rec.emit(Event::Restart { conflicts: 17 });
        rec.emit(Event::Reduction { removed: 42 });
        rec.emit(Event::TheoryLemma { cycle_len: 4 });
        let snap = rec.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.counters.restarts, 1);
        assert_eq!(snap.counters.clauses_removed, 42);
        assert_eq!(snap.counters.theory_lemmas, 1);
        assert_eq!(snap.counters.lemma_cycle_edges, 4);
        // Histograms are fed even when event storage is off.
        assert_eq!(snap.hists.restart_interval.count(), 1);
        assert_eq!(snap.hists.restart_interval.max(), 17);
        assert_eq!(snap.hists.lemma_cycle_len.count(), 1);
    }

    #[test]
    fn conflict_windows_are_per_member_and_per_class() {
        let rec = Recorder::default();
        rec.set_var_classes(vec![VarClass::ExternalRf, VarClass::Ws]);
        let a = rec.member_labeled("a");
        let b = rec.member_labeled("b");
        // Member a: 3 external-RF decisions, then a conflict.
        for _ in 0..3 {
            a.emit(Event::Decision {
                var: 0,
                level: 1,
                guided: true,
            });
        }
        // Member b decides too, but never conflicts: its window stays open
        // and must not leak into the histograms.
        b.emit(Event::Decision {
            var: 1,
            level: 1,
            guided: false,
        });
        a.emit(Event::Conflict { level: 1, lbd: 2 });
        let snap = rec.snapshot();
        let ext = &snap.hists.dec_to_conflict[VarClass::ExternalRf.index()];
        assert_eq!(ext.count(), 1);
        assert_eq!(ext.max(), 3);
        // b's Ws decision is still in flight — no observation.
        assert_eq!(snap.hists.dec_to_conflict[VarClass::Ws.index()].count(), 0);
        // Classes with zero decisions in the window are skipped entirely.
        assert_eq!(
            snap.hists.dec_to_conflict[VarClass::Other.index()].count(),
            0
        );
        assert_eq!(snap.hists.conflict_lbd.count(), 1);
    }

    #[test]
    fn concurrent_member_streams_are_deterministic() {
        // Two recorders fed by the same per-member scripts on different thread
        // interleavings must yield identical per-member event subsequences.
        fn run() -> TraceSnapshot {
            let rec = Recorder::default();
            rec.set_var_classes(vec![VarClass::ExternalRf, VarClass::Ws]);
            let names = ["zpre", "baseline", "zpre#2"];
            std::thread::scope(|s| {
                for (i, name) in names.iter().enumerate() {
                    let member = rec.member_labeled(name);
                    s.spawn(move || {
                        for round in 0..50u32 {
                            member.emit(Event::Decision {
                                var: (round + i as u32) % 2,
                                level: round,
                                guided: true,
                            });
                            if round % 10 == 0 {
                                member.emit(Event::Conflict {
                                    level: round,
                                    lbd: i as u32 + 1,
                                });
                            }
                        }
                    });
                }
            });
            rec.snapshot()
        }

        let a = run();
        let b = run();
        // Global interleaving may differ, but per-member streams and the
        // aggregate counters are identical run to run.
        assert_eq!(a.counters, b.counters);
        for name in ["zpre", "baseline", "zpre#2"] {
            let stream = |s: &TraceSnapshot| -> Vec<EventKind> {
                s.events
                    .iter()
                    .filter(|e| e.member.as_deref() == Some(name))
                    .map(|e| e.kind)
                    .collect()
            };
            assert_eq!(stream(&a), stream(&b), "member {name} stream diverged");
        }
        // Sequence numbers are strictly increasing overall.
        for w in a.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn cycle_checks_fold_into_counters_only() {
        let rec = Recorder::default();
        rec.emit(Event::CycleCheck {
            visited: 0,
            promoted: 0,
            accepted_o1: true,
        });
        rec.emit(Event::CycleCheck {
            visited: 7,
            promoted: 3,
            accepted_o1: false,
        });
        rec.emit(Event::CycleCheck {
            visited: 2,
            promoted: 0,
            accepted_o1: false,
        });
        let snap = rec.snapshot();
        // Counter-only: never in the event stream.
        assert!(snap.events.is_empty());
        assert_eq!(snap.counters.cycle_checks, 3);
        assert_eq!(snap.counters.cycle_accepted_o1, 1);
        assert_eq!(snap.counters.cycle_searched, 2);
        assert_eq!(
            snap.counters.cycle_accepted_o1 + snap.counters.cycle_searched,
            snap.counters.cycle_checks
        );
        assert_eq!(snap.counters.cycle_visited, 9);
        assert_eq!(snap.counters.cycle_promoted, 3);
    }

    #[test]
    fn share_deltas_fold_into_counters_only() {
        let rec = Recorder::default();
        rec.emit(Event::Share {
            exported: 5,
            exported_theory: 2,
            exported_rf: 1,
            imported: 3,
            dropped: 4,
            import_hits: 0,
        });
        rec.emit(Event::Share {
            exported: 1,
            exported_theory: 0,
            exported_rf: 0,
            imported: 2,
            dropped: 0,
            import_hits: 7,
        });
        let snap = rec.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.counters.sh_exported, 6);
        assert_eq!(snap.counters.sh_exported_theory, 2);
        assert_eq!(snap.counters.sh_exported_rf, 1);
        assert_eq!(snap.counters.sh_imported, 5);
        assert_eq!(snap.counters.sh_dropped, 4);
        assert_eq!(snap.counters.sh_import_hits, 7);
        // Zero-hit exchanges don't observe; the one hit batch does.
        assert_eq!(snap.hists.sh_import_hits.count(), 1);
        assert_eq!(snap.hists.sh_import_hits.max(), 7);
    }

    #[test]
    fn member_records_accumulate() {
        let rec = Recorder::default();
        rec.record_member(MemberRecord {
            name: "zpre".into(),
            strategy: "zpre".into(),
            verdict: "safe".into(),
            winner: true,
            decisions: 12,
            ..MemberRecord::default()
        });
        rec.record_member(MemberRecord {
            name: "baseline".into(),
            strategy: "baseline".into(),
            verdict: "unknown".into(),
            cancelled: true,
            error: Some("cancelled".into()),
            ..MemberRecord::default()
        });
        let snap = rec.snapshot();
        assert_eq!(snap.members.len(), 2);
        assert!(snap.members[0].winner);
        assert!(snap.members[1].cancelled);
    }
}
