//! Human-readable `--profile` report rendered from a [`TraceSnapshot`], in
//! the same fixed-width table style as `crates/bench/src/ascii.rs`.

use std::fmt::Write as _;

use crate::event::VarClass;
use crate::recorder::{Phase, TraceSnapshot};

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Share of `part` in `whole` as a percentage, clamped to 100: nested or
/// overlapping spans can sum past the wall clock, but a display share never
/// exceeds it. `None` when there is no denominator to take a share of.
fn pct_of(part: u64, whole: u64) -> Option<f64> {
    if whole == 0 {
        None
    } else {
        Some((100.0 * part as f64 / whole as f64).min(100.0))
    }
}

/// Right-aligned percentage cell; `—` when there is no denominator.
fn pct_cell(pct: Option<f64>) -> String {
    match pct {
        Some(p) => format!("{p:>6.1}%"),
        None => format!("{:>7}", "—"),
    }
}

/// `#`-bar at 2.5% per character, capped at 40 characters. Total, not
/// saturating, arithmetic: the input is already clamped and NaN maps to an
/// empty bar, so the `usize` cast cannot wrap.
fn bar(pct: Option<f64>) -> String {
    let chars = (pct.unwrap_or(0.0) / 2.5).round();
    let chars = if chars.is_finite() {
        chars.clamp(0.0, 40.0) as usize
    } else {
        0
    };
    "#".repeat(chars)
}

/// Render the phase profile, decision histogram, solver event summary, and
/// portfolio member table as an ASCII report.
pub fn profile_report(snap: &TraceSnapshot) -> String {
    let mut out = String::new();

    // ---- phase profile --------------------------------------------------
    out.push_str("phase profile\n");
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>12} {:>7}  share",
        "phase", "spans", "total(ms)", "%"
    );
    // Wall time = sum of top-level (depth 0) closed spans; nested spans are
    // shown indented and counted inside their parents.
    let wall_us: u64 = snap
        .spans
        .iter()
        .filter(|s| s.depth == 0 && s.closed)
        .map(|s| s.dur_us)
        .sum();
    for phase in Phase::all() {
        // Aggregate per (phase, label) so e.g. encode spans per memory model
        // get their own rows.
        let mut rows: Vec<(Option<&str>, u32, usize, u64)> = Vec::new();
        for s in snap.spans.iter().filter(|s| s.phase == phase && s.closed) {
            let label = s.label.as_deref();
            if let Some(row) = rows
                .iter_mut()
                .find(|(l, d, _, _)| *l == label && *d == s.depth)
            {
                row.2 += 1;
                row.3 += s.dur_us;
            } else {
                rows.push((label, s.depth, 1, s.dur_us));
            }
        }
        for (label, depth, count, total_us) in rows {
            let mut name = "  ".repeat(depth as usize);
            name.push_str(phase.name());
            if let Some(l) = label {
                let _ = write!(name, "[{l}]");
            }
            let pct = pct_of(total_us, wall_us);
            let _ = writeln!(
                out,
                "{:<22} {:>6} {:>12.3} {}  {}",
                name,
                count,
                ms(total_us),
                pct_cell(pct),
                bar(pct)
            );
        }
    }
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>12.3} {}",
        "total(top-level)",
        snap.spans.iter().filter(|s| s.depth == 0).count(),
        ms(wall_us),
        pct_cell(pct_of(wall_us, wall_us))
    );

    // ---- decision histogram ---------------------------------------------
    let c = &snap.counters;
    let total = c.total_decisions();
    out.push_str("\ndecisions by variable class\n");
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>7}  share",
        "class", "decisions", "guided", "%"
    );
    for cls in VarClass::all() {
        let n = c.decisions[cls.index()];
        let pct = pct_of(n, total);
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {}  {}",
            cls.name(),
            n,
            c.guided[cls.index()],
            pct_cell(pct),
            bar(pct)
        );
    }
    let interference = c.interference_decisions();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {}",
        "interference",
        interference,
        "",
        pct_cell(pct_of(interference, total))
    );

    // ---- solver events ---------------------------------------------------
    out.push_str("\nsolver events\n");
    let mean_cycle = if c.theory_lemmas > 0 {
        c.lemma_cycle_edges as f64 / c.theory_lemmas as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "conflicts {}  theory-lemmas {} (mean EOG cycle {:.1})  restarts {}  reductions {} ({} clauses)",
        c.conflicts, c.theory_lemmas, mean_cycle, c.restarts, c.reductions, c.clauses_removed
    );
    if c.cycle_checks > 0 {
        let _ = writeln!(
            out,
            "cycle-checks {} ({} O(1)-accepted, {} searched; {} nodes visited, {} levels promoted)",
            c.cycle_checks,
            c.cycle_accepted_o1,
            c.cycle_searched,
            c.cycle_visited,
            c.cycle_promoted
        );
    }
    if c.frames > 0 {
        let _ = writeln!(
            out,
            "sweep frames {} (reused at entry: {} learnt clauses, {} conflicts of prior frames)",
            c.frames, c.frame_reused_learnts, c.frame_reused_conflicts
        );
    }
    if c.batch_tasks > 0 {
        let _ = writeln!(
            out,
            "batch tasks {} (retries {}, degradations {}, checkpoints {})",
            c.batch_tasks, c.batch_retries, c.batch_degraded, c.batch_checkpoints
        );
    }
    if snap.decision_sample > 1 {
        let _ = writeln!(
            out,
            "decision events sampled 1/{} ({} dropped from the stream; counters exact)",
            snap.decision_sample, c.dropped_events
        );
    }

    // ---- distributions ---------------------------------------------------
    let named = snap.hists.named();
    if named.iter().any(|(_, h)| h.count() > 0) {
        out.push_str("\ndistributions\n");
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "metric", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in named {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max()
            );
        }
    }

    // ---- portfolio members ----------------------------------------------
    if !snap.members.is_empty() {
        out.push_str("\nportfolio members\n");
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:>8} {:>10} {:>10} {:>10}  flags",
            "member", "strategy", "verdict", "decisions", "conflicts", "time(ms)"
        );
        for m in &snap.members {
            let mut flags = String::new();
            if m.winner {
                flags.push_str("winner ");
            }
            if m.cancelled {
                flags.push_str("cancelled ");
            }
            if let Some(e) = &m.error {
                let _ = write!(flags, "[{e}]");
            }
            let _ = writeln!(
                out,
                "{:<14} {:<10} {:>8} {:>10} {:>10} {:>10.3}  {}",
                m.name,
                m.strategy,
                m.verdict,
                m.decisions,
                m.conflicts,
                ms(m.time_us),
                flags.trim_end()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::{MemberRecord, Phase, Recorder};
    use crate::EventSink;

    #[test]
    fn report_contains_all_sections() {
        let rec = Recorder::default();
        rec.set_var_classes(vec![VarClass::ExternalRf, VarClass::Ws]);
        {
            let _s = rec.span_labeled(Phase::Encode, Some("tso"));
            let _b = rec.span(Phase::Blast);
        }
        {
            let _s = rec.span(Phase::Solve);
        }
        rec.emit(Event::Decision {
            var: 0,
            level: 1,
            guided: true,
        });
        rec.emit(Event::Decision {
            var: 1,
            level: 2,
            guided: true,
        });
        rec.emit(Event::Conflict { level: 2, lbd: 1 });
        rec.emit(Event::TheoryLemma { cycle_len: 3 });
        rec.emit(Event::CycleCheck {
            visited: 4,
            promoted: 1,
            accepted_o1: false,
        });
        rec.emit(Event::CycleCheck {
            visited: 0,
            promoted: 0,
            accepted_o1: true,
        });
        rec.record_member(MemberRecord {
            name: "zpre".into(),
            strategy: "zpre".into(),
            verdict: "safe".into(),
            winner: true,
            decisions: 2,
            conflicts: 1,
            time_us: 5000,
            ..MemberRecord::default()
        });
        let report = profile_report(&rec.snapshot());
        assert!(report.contains("phase profile"));
        assert!(report.contains("encode[tso]"));
        assert!(report.contains("  blast"));
        assert!(report.contains("solve"));
        assert!(report.contains("decisions by variable class"));
        assert!(report.contains("rf_ext"));
        assert!(report.contains("interference"));
        assert!(report.contains("mean EOG cycle 3.0"));
        assert!(report.contains("cycle-checks 2 (1 O(1)-accepted, 1 searched"));
        assert!(report.contains("portfolio members"));
        assert!(report.contains("winner"));
        assert!(report.contains("distributions"));
        assert!(report.contains("conflict_lbd"));
    }

    #[test]
    fn report_handles_empty_snapshot() {
        let report = profile_report(&TraceSnapshot::default());
        assert!(report.contains("phase profile"));
        assert!(report.contains("decisions by variable class"));
        // No denominator → shares render as `—`, never 0.0% or NaN.
        assert!(report.contains("—"));
        assert!(!report.contains("NaN"));
        // An empty snapshot has no distributions section.
        assert!(!report.contains("distributions"));
    }

    #[test]
    fn shares_clamp_at_100_percent() {
        // Two overlapping top-level spans make each phase's share of the
        // summed wall clock well-defined, but a hand-built snapshot can
        // still claim a phase longer than the wall: the display must clamp.
        let snap = TraceSnapshot {
            spans: vec![
                crate::recorder::SpanRecord {
                    phase: Phase::Solve,
                    label: None,
                    member: None,
                    depth: 0,
                    start_us: 0,
                    dur_us: 10,
                    closed: true,
                },
                crate::recorder::SpanRecord {
                    phase: Phase::Solve,
                    label: None,
                    member: None,
                    depth: 1,
                    start_us: 0,
                    dur_us: 500,
                    closed: true,
                },
            ],
            ..TraceSnapshot::default()
        };
        let report = profile_report(&snap);
        // The nested span is 50× the wall; its row shows 100.0%, not 5000%.
        assert!(report.contains("100.0%"), "got:\n{report}");
        assert!(!report.contains("5000.0%"), "got:\n{report}");
    }
}
