//! Structured solver/theory event taxonomy and the `EventSink` trait.
//!
//! The solver and the order theory know nothing about variable *classes*
//! (external-RF / internal-RF / WS / …): that mapping lives in the encoder's
//! `VarRegistry`. They therefore emit events keyed by raw variable index, and
//! the [`Recorder`](crate::Recorder) resolves the class at record time from a
//! table installed by the verifier after encoding.

/// Interference-oriented classification of a solver variable, mirroring the
/// paper's taxonomy: read-from choices crossing threads (`V_rf` external),
/// read-from choices within a thread, write-serialization order (`V_ws`), and
/// everything else (SSA values, guards, ordering atoms, auxiliaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarClass {
    ExternalRf,
    InternalRf,
    Ws,
    Other,
}

impl VarClass {
    /// Number of distinct classes; used to size per-class counter arrays.
    pub const COUNT: usize = 4;

    /// Stable index into per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            VarClass::ExternalRf => 0,
            VarClass::InternalRf => 1,
            VarClass::Ws => 2,
            VarClass::Other => 3,
        }
    }

    /// Short stable name used in NDJSON output.
    pub fn name(self) -> &'static str {
        match self {
            VarClass::ExternalRf => "rf_ext",
            VarClass::InternalRf => "rf_int",
            VarClass::Ws => "ws",
            VarClass::Other => "other",
        }
    }

    /// Inverse of [`VarClass::name`].
    pub fn from_name(s: &str) -> Option<VarClass> {
        match s {
            "rf_ext" => Some(VarClass::ExternalRf),
            "rf_int" => Some(VarClass::InternalRf),
            "ws" => Some(VarClass::Ws),
            "other" => Some(VarClass::Other),
            _ => None,
        }
    }

    /// True for the interference classes the paper's H1 heuristic front-loads.
    pub fn is_interference(self) -> bool {
        !matches!(self, VarClass::Other)
    }

    /// All classes in counter-array order.
    pub fn all() -> [VarClass; Self::COUNT] {
        [
            VarClass::ExternalRf,
            VarClass::InternalRf,
            VarClass::Ws,
            VarClass::Other,
        ]
    }
}

/// A structured event emitted by the SAT solver or the order theory.
///
/// Variables are raw solver indices; class resolution happens in the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A branching decision. `guided` is true when the decision came from the
    /// installed `DecisionGuide` (the paper's priority list) rather than VSIDS.
    Decision { var: u32, level: u32, guided: bool },
    /// A conflict, reported after analysis so the learnt clause's LBD is known.
    /// `level` is the decision level at which the conflict occurred.
    Conflict { level: u32, lbd: u32 },
    /// An order-theory lemma blocking an EOG cycle of `cycle_len` edges.
    TheoryLemma { cycle_len: u32 },
    /// A solver restart. `conflicts` is the restart interval: conflicts
    /// resolved since the previous restart (or since solving began), the
    /// raw observation behind the restart-interval histogram.
    Restart { conflicts: u64 },
    /// A learnt-database reduction that removed `removed` clauses.
    Reduction { removed: u64 },
    /// One EOG cycle check by the order theory. `accepted_o1` is true when
    /// the topological-level invariant accepted the edge without any search;
    /// otherwise `visited` nodes were touched by the bounded two-way search
    /// and `promoted` nodes had their level raised. Folded into counters
    /// only — never stored in the event stream (it fires per asserted atom).
    CycleCheck {
        visited: u32,
        promoted: u32,
        accepted_o1: bool,
    },
    /// Clause-sharing traffic deltas, emitted by a portfolio member at
    /// exchange points (root-level imports) and once at solve exit. All
    /// fields are increments since the member's previous `Share` event.
    /// Folded into counters only — never stored in the event stream.
    Share {
        /// Clauses offered to the pool (any class).
        exported: u64,
        /// Subset of `exported` that were theory cycle lemmas.
        exported_theory: u64,
        /// Subset of `exported` that touched external-RF variables.
        exported_rf: u64,
        /// Foreign clauses attached by this member.
        imported: u64,
        /// Foreign clauses rejected (duplicate, ring overrun, root-satisfied,
        /// or policy-filtered).
        dropped: u64,
        /// Times an imported clause propagated or conflicted here.
        import_hits: u64,
    },
}

/// Receiver for solver/theory events. Implementations must be cheap: the
/// solver calls [`EventSink::emit`] on its hot paths whenever a sink is
/// installed (the disabled path is a branch on an `Option` and never calls
/// this).
pub trait EventSink: Send + Sync {
    fn emit(&self, ev: Event);
}
