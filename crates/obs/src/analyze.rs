//! Trace loading and aggregation: parse NDJSON trace files (one or many
//! `summary`-terminated blocks) back into [`TraceSnapshot`]s and flatten
//! them into a named metric map — the common currency of `trace stats`,
//! `trace diff`, and the checked-in CI baselines.
//!
//! Two on-disk shapes load into the same [`TraceStats`]:
//!
//! * a raw trace (`span`/`decision`/…/`summary` lines, possibly several
//!   concatenated blocks), aggregated by summing counters, merging
//!   histograms, and summing top-level phase durations;
//! * a metrics stream (`{"t":"metrics",…}` lines from `trace stats --json`
//!   or the batch heartbeat), where the *last* line is the freshest
//!   snapshot and is taken verbatim.
//!
//! The metric names produced here are the stable vocabulary the diff gate
//! is configured over; see [`crate::diff::direction_of`].

use std::collections::BTreeMap;

use crate::ndjson::{from_ndjson_at, parse_line, JsonVal};
use crate::recorder::TraceSnapshot;

/// A flat named metric map distilled from one or more trace blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Metric name → value. All values are `u64`, matching the integer-only
    /// trace grammar; shares are permille (`_pm`), times microseconds (`_us`).
    pub metrics: BTreeMap<String, u64>,
}

impl TraceStats {
    /// Value of `name` (0 when absent — an absent metric is an observed
    /// zero for diffing purposes).
    pub fn get(&self, name: &str) -> u64 {
        self.metrics.get(name).copied().unwrap_or(0)
    }

    /// Flatten snapshots into one metric map: counters summed, histograms
    /// merged, per-phase top-level durations summed across blocks.
    pub fn from_snapshots(snaps: &[TraceSnapshot]) -> TraceStats {
        let mut counters = crate::recorder::Counters::default();
        let mut hists = crate::metrics::Hists::default();
        let mut phase_us: BTreeMap<String, u64> = BTreeMap::new();
        let mut wall_us = 0u64;
        for snap in snaps {
            let c = &snap.counters;
            for i in 0..crate::VarClass::COUNT {
                counters.decisions[i] += c.decisions[i];
                counters.guided[i] += c.guided[i];
            }
            counters.conflicts += c.conflicts;
            counters.theory_lemmas += c.theory_lemmas;
            counters.lemma_cycle_edges += c.lemma_cycle_edges;
            counters.restarts += c.restarts;
            counters.reductions += c.reductions;
            counters.clauses_removed += c.clauses_removed;
            counters.cycle_checks += c.cycle_checks;
            counters.cycle_accepted_o1 += c.cycle_accepted_o1;
            counters.cycle_searched += c.cycle_searched;
            counters.cycle_visited += c.cycle_visited;
            counters.cycle_promoted += c.cycle_promoted;
            counters.dropped_events += c.dropped_events;
            counters.frames += c.frames;
            counters.frame_reused_learnts += c.frame_reused_learnts;
            counters.frame_reused_conflicts += c.frame_reused_conflicts;
            counters.batch_tasks += c.batch_tasks;
            counters.batch_retries += c.batch_retries;
            counters.batch_degraded += c.batch_degraded;
            counters.batch_checkpoints += c.batch_checkpoints;
            counters.sh_exported += c.sh_exported;
            counters.sh_exported_theory += c.sh_exported_theory;
            counters.sh_exported_rf += c.sh_exported_rf;
            counters.sh_imported += c.sh_imported;
            counters.sh_dropped += c.sh_dropped;
            counters.sh_import_hits += c.sh_import_hits;
            counters.pr_rf_pruned += c.pr_rf_pruned;
            counters.pr_rf_kept += c.pr_rf_kept;
            counters.pr_ws_pruned += c.pr_ws_pruned;
            counters.pr_ws_serialized += c.pr_ws_serialized;
            counters.pr_reads_resolved += c.pr_reads_resolved;
            counters.pr_local_vars += c.pr_local_vars;
            hists.merge(&snap.hists);
            for s in snap.spans.iter().filter(|s| s.depth == 0 && s.closed) {
                *phase_us
                    .entry(format!("phase_{}_us", s.phase.name()))
                    .or_insert(0) += s.dur_us;
                wall_us += s.dur_us;
            }
        }

        let mut m = BTreeMap::new();
        let c = &counters;
        for cls in crate::VarClass::all() {
            m.insert(format!("dec_{}", cls.name()), c.decisions[cls.index()]);
            m.insert(format!("gd_{}", cls.name()), c.guided[cls.index()]);
        }
        let total = c.total_decisions();
        m.insert("decisions".into(), total);
        m.insert("guided".into(), c.guided.iter().sum());
        // Interference share in permille: the paper's H1 metric, integer-safe.
        let h1_pm = (c.interference_decisions() * 1000)
            .checked_div(total)
            .unwrap_or(0);
        m.insert("h1_share_pm".into(), h1_pm);
        m.insert("conflicts".into(), c.conflicts);
        m.insert("lemmas".into(), c.theory_lemmas);
        m.insert("lemma_cycle_edges".into(), c.lemma_cycle_edges);
        m.insert("restarts".into(), c.restarts);
        m.insert("reductions".into(), c.reductions);
        m.insert("clauses_removed".into(), c.clauses_removed);
        m.insert("cc_total".into(), c.cycle_checks);
        m.insert("cc_o1".into(), c.cycle_accepted_o1);
        m.insert("cc_searched".into(), c.cycle_searched);
        m.insert("cc_visited".into(), c.cycle_visited);
        m.insert("cc_promoted".into(), c.cycle_promoted);
        m.insert("frames".into(), c.frames);
        m.insert("fr_learnts".into(), c.frame_reused_learnts);
        m.insert("fr_conflicts".into(), c.frame_reused_conflicts);
        m.insert("batch_tasks".into(), c.batch_tasks);
        m.insert("batch_retries".into(), c.batch_retries);
        m.insert("batch_degraded".into(), c.batch_degraded);
        m.insert("sh_exported".into(), c.sh_exported);
        m.insert("sh_exported_theory".into(), c.sh_exported_theory);
        m.insert("sh_exported_rf".into(), c.sh_exported_rf);
        m.insert("sh_imported".into(), c.sh_imported);
        m.insert("sh_dropped".into(), c.sh_dropped);
        m.insert("sh_import_hits".into(), c.sh_import_hits);
        m.insert("pr_rf_pruned".into(), c.pr_rf_pruned);
        m.insert("pr_rf_kept".into(), c.pr_rf_kept);
        m.insert("pr_ws_pruned".into(), c.pr_ws_pruned);
        m.insert("pr_ws_serialized".into(), c.pr_ws_serialized);
        m.insert("pr_reads_resolved".into(), c.pr_reads_resolved);
        m.insert("pr_local_vars".into(), c.pr_local_vars);
        for (name, h) in hists.named() {
            if h.count() == 0 {
                continue;
            }
            m.insert(format!("{name}_p50"), h.percentile(0.50));
            m.insert(format!("{name}_p90"), h.percentile(0.90));
            m.insert(format!("{name}_p99"), h.percentile(0.99));
            m.insert(format!("{name}_max"), h.max());
            m.insert(format!("{name}_count"), h.count());
        }
        for (name, us) in phase_us {
            m.insert(name, us);
        }
        m.insert("wall_us".into(), wall_us);
        TraceStats { metrics: m }
    }

    /// One flat NDJSON `metrics` line carrying every metric — the format of
    /// `trace stats --json` output and of checked-in CI baselines.
    pub fn to_metrics_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"t\":\"metrics\"");
        for (k, v) in &self.metrics {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        out.push('}');
        out
    }
}

/// Split a trace file into its `summary`-terminated blocks and parse each.
/// Errors carry absolute file line numbers.
pub fn load_blocks(text: &str) -> Result<Vec<TraceSnapshot>, String> {
    let mut blocks = Vec::new();
    let mut block = String::new();
    let mut block_start = 1usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            block.push('\n');
            continue;
        }
        block.push_str(line);
        block.push('\n');
        let map = parse_line(line.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if map.get("t").and_then(JsonVal::as_str) == Some("summary") {
            blocks.push(from_ndjson_at(&block, block_start)?);
            block.clear();
            block_start = lineno + 2;
        }
    }
    if !block.trim().is_empty() {
        return Err(format!(
            "trailing lines from line {block_start} not terminated by a summary"
        ));
    }
    if blocks.is_empty() {
        return Err("no trace blocks found".into());
    }
    Ok(blocks)
}

/// Load either on-disk shape into [`TraceStats`]: a `metrics`-line file
/// takes its last (freshest) line verbatim; anything else parses as a raw
/// trace and aggregates all blocks.
pub fn load_stats(text: &str) -> Result<TraceStats, String> {
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or("empty trace file")?;
    let map = parse_line(first.trim()).map_err(|e| format!("line 1: {e}"))?;
    if map.get("t").and_then(JsonVal::as_str) == Some("metrics") {
        let mut last = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let map = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if map.get("t").and_then(JsonVal::as_str) != Some("metrics") {
                return Err(format!("line {}: mixed tags in a metrics file", lineno + 1));
            }
            last = Some(map);
        }
        let map = last.expect("checked non-empty above");
        let mut metrics = BTreeMap::new();
        for (k, v) in map {
            // `seq` orders a heartbeat stream; it is bookkeeping, not a metric.
            if k == "t" || k == "seq" {
                continue;
            }
            if let JsonVal::Num(n) = v {
                metrics.insert(k, n);
            }
        }
        Ok(TraceStats { metrics })
    } else {
        Ok(TraceStats::from_snapshots(&load_blocks(text)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ndjson::to_ndjson;
    use crate::recorder::{Phase, Recorder};
    use crate::EventSink;

    fn snapshot_with_activity() -> TraceSnapshot {
        let rec = Recorder::default();
        rec.set_var_classes(vec![crate::VarClass::ExternalRf, crate::VarClass::Other]);
        {
            let _solve = rec.span(Phase::Solve);
            let _nested = rec.span(Phase::Blast);
        }
        for _ in 0..3 {
            rec.emit(Event::Decision {
                var: 0,
                level: 1,
                guided: true,
            });
        }
        rec.emit(Event::Decision {
            var: 1,
            level: 1,
            guided: false,
        });
        rec.emit(Event::Conflict { level: 1, lbd: 4 });
        rec.snapshot()
    }

    #[test]
    fn stats_flatten_counters_shares_and_hists() {
        let snap = snapshot_with_activity();
        let stats = TraceStats::from_snapshots(&[snap]);
        assert_eq!(stats.get("decisions"), 4);
        assert_eq!(stats.get("dec_rf_ext"), 3);
        assert_eq!(stats.get("conflicts"), 1);
        // 3 of 4 decisions are interference: 750‰.
        assert_eq!(stats.get("h1_share_pm"), 750);
        assert_eq!(stats.get("conflict_lbd_p50"), 4);
        assert_eq!(stats.get("conflict_lbd_count"), 1);
        // Only the top-level solve span counts toward phase/wall time.
        assert_eq!(stats.get("phase_solve_us"), stats.get("wall_us"));
        assert_eq!(stats.get("phase_blast_us"), 0);
    }

    #[test]
    fn aggregation_sums_across_blocks() {
        let snap = snapshot_with_activity();
        let one = TraceStats::from_snapshots(std::slice::from_ref(&snap));
        let two = TraceStats::from_snapshots(&[snap.clone(), snap]);
        assert_eq!(two.get("decisions"), 2 * one.get("decisions"));
        assert_eq!(two.get("conflicts"), 2 * one.get("conflicts"));
        assert_eq!(two.get("conflict_lbd_count"), 2);
        // Shares are scale-free: doubling identical blocks keeps them.
        assert_eq!(two.get("h1_share_pm"), one.get("h1_share_pm"));
    }

    #[test]
    fn load_stats_handles_both_shapes() {
        let snap = snapshot_with_activity();
        let mut trace = to_ndjson(&snap);
        trace.push_str(&to_ndjson(&snap));
        let from_trace = load_stats(&trace).expect("raw trace");
        assert_eq!(from_trace.get("decisions"), 8);

        // The metrics-line round trip is exact.
        let line = from_trace.to_metrics_line();
        let from_line = load_stats(&line).expect("metrics line");
        assert_eq!(from_line, from_trace);

        // A stream takes the last line.
        let old = TraceStats {
            metrics: [("decisions".to_string(), 1u64)].into_iter().collect(),
        };
        let stream = format!(
            "{}\n{}\n",
            old.to_metrics_line(),
            from_trace.to_metrics_line()
        );
        assert_eq!(load_stats(&stream).expect("stream").get("decisions"), 8);

        assert!(load_stats("").is_err());
        assert!(load_stats("{\"t\":\"nonsense\"}\n").is_err());
    }
}
