//! Property tests for the trace analytics layer.
//!
//! Three families of invariants:
//!
//! - **NDJSON round trip is a fixpoint**: a snapshot built from a random
//!   event stream serializes, parses, and re-serializes to byte-identical
//!   text, and the serialized form passes `validate` — so every trace the
//!   recorder can produce is also a trace the analysis tools can load.
//! - **Histogram vs exact oracle**: against a sorted copy of the raw
//!   observations, every percentile is an upper bound on the true order
//!   statistic, tight to the documented 1/16 bucket width; merging two
//!   histograms equals observing the concatenated stream; the NDJSON
//!   bucket encoding round trips exactly.
//! - **Diff gate verdicts**: each row's verdict matches an independently
//!   computed expectation from the metric's direction, tolerance, and the
//!   `min_base` noise floor; the gate fails exactly when some gated metric
//!   regressed; a self-diff is always clean.

use proptest::prelude::*;
use zpre_obs::analyze::TraceStats;
use zpre_obs::diff::{diff, direction_of, Direction};
use zpre_obs::ndjson::{from_ndjson, to_ndjson, validate};
use zpre_obs::{DiffOptions, Event, EventSink, Histogram, Recorder, TraceConfig, Verdict};

/// A solver-shaped event: decisions, conflicts, lemmas, restarts,
/// reductions, and cycle checks in realistic value ranges.
fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u32..64, 1u32..32, any::<bool>()).prop_map(|(var, level, guided)| Event::Decision {
            var,
            level,
            guided
        }),
        (1u32..32, 1u32..24).prop_map(|(level, lbd)| Event::Conflict { level, lbd }),
        (2u32..40).prop_map(|cycle_len| Event::TheoryLemma { cycle_len }),
        (0u64..5000).prop_map(|conflicts| Event::Restart { conflicts }),
        (0u64..2000).prop_map(|removed| Event::Reduction { removed }),
        (0u32..500, 0u32..100, any::<bool>()).prop_map(|(visited, promoted, accepted_o1)| {
            Event::CycleCheck {
                visited,
                promoted,
                accepted_o1,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn ndjson_round_trip_is_a_fixpoint(events in prop::collection::vec(arb_event(), 0..200)) {
        let rec = Recorder::new(TraceConfig { events: true, decision_sample: 1 });
        rec.set_var_classes(vec![
            zpre_obs::VarClass::ExternalRf,
            zpre_obs::VarClass::InternalRf,
            zpre_obs::VarClass::Ws,
            zpre_obs::VarClass::Other,
        ]);
        for &e in &events {
            rec.emit(e);
        }
        let snap = rec.snapshot();
        let text = to_ndjson(&snap);
        validate(&text).expect("recorder output validates");
        let reparsed = from_ndjson(&text).expect("recorder output parses");
        prop_assert_eq!(to_ndjson(&reparsed), text);
    }

    #[test]
    fn histogram_percentiles_bound_the_exact_order_statistic(
        values in prop::collection::vec(
            prop_oneof![0u64..64, 0u64..100_000, 0u64..u64::MAX],
            1..300,
        )
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        let mut sum = 0u64;
        for &v in &values {
            sum = sum.saturating_add(v);
        }
        prop_assert_eq!(h.sum(), sum);
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = sorted[rank - 1];
            let got = h.percentile(q);
            // Upper bound on the true order statistic, tight to the
            // log-linear bucket width (<= 1/16 relative above the exact
            // linear region).
            prop_assert!(got >= exact, "p{q}: {got} < exact {exact}");
            let slack = exact / 16 + 1;
            prop_assert!(
                got <= exact.saturating_add(slack),
                "p{q}: {got} > exact {exact} + {slack}"
            );
        }
    }

    #[test]
    fn histogram_merge_equals_concatenation_and_encoding_round_trips(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.observe(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.observe(v);
        }
        let mut hcat = Histogram::new();
        for &v in a.iter().chain(&b) {
            hcat.observe(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &hcat);

        let decoded = Histogram::decode(
            hcat.count(),
            hcat.sum(),
            hcat.min(),
            hcat.max(),
            &hcat.encode_buckets(),
        )
        .expect("own encoding decodes");
        prop_assert_eq!(decoded, hcat);
    }

    #[test]
    fn diff_gate_verdicts_match_an_independent_oracle(
        pairs in prop::collection::vec(
            (
                prop_oneof![
                    Just("conflicts"), Just("decisions"), Just("restarts"),
                    Just("h1_share_pm"), Just("cc_o1"), Just("conflict_lbd_p90"),
                    Just("cycle_visited_max"), Just("phase_solve_us"), Just("wall_us"),
                    Just("dec_rf_ext"), Just("frames"),
                ],
                0u64..10_000,
                0u64..10_000,
            ),
            0..24,
        ),
        tol_pct in 1u32..100,
        gate_time in any::<bool>(),
    ) {
        let mut base = TraceStats::default();
        let mut new = TraceStats::default();
        for (name, b, n) in &pairs {
            base.metrics.insert(name.to_string(), *b);
            new.metrics.insert(name.to_string(), *n);
        }
        let opts = DiffOptions {
            tolerance: tol_pct as f64 / 100.0,
            gate_time,
            ..DiffOptions::default()
        };
        let report = diff(&base, &new, &opts);

        // A self-diff is always clean, whatever the options.
        prop_assert!(!diff(&base, &base, &opts).gate_failed());

        for row in &report.rows {
            let b = base.get(&row.name);
            let n = new.get(&row.name);
            let rel = (n as f64 - b as f64) / b.max(opts.min_base) as f64;
            let mut dir = direction_of(&row.name);
            if dir == Direction::Info
                && gate_time
                && (row.name.ends_with("_us") || row.name.ends_with("_ms"))
            {
                dir = Direction::LowerBetter;
            }
            let expected = match dir {
                Direction::Info => Verdict::Info,
                _ if rel.abs() <= opts.tolerance => Verdict::WithinNoise,
                Direction::LowerBetter if rel > 0.0 => Verdict::Regressed,
                Direction::HigherBetter if rel < 0.0 => Verdict::Regressed,
                _ => Verdict::Improved,
            };
            prop_assert_eq!(row.verdict, expected, "metric {}", row.name);
        }
        let regressed: Vec<&str> = report
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .map(|r| r.name.as_str())
            .collect();
        prop_assert_eq!(&report.regressed, &regressed);
        prop_assert_eq!(report.gate_failed(), !regressed.is_empty());
    }
}
