//! Property tests for the event-order theory: incremental cycle detection
//! against an offline reachability check, undo correctness, and the
//! CDCL(T) integration on random orientation problems.

use proptest::prelude::*;
use zpre_sat::{SolveResult, Solver, Theory, TheoryOut, Var};
use zpre_smt::{NodeId, OrderTheory};

/// Offline cycle check over an edge list.
fn has_cycle(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(x) = queue.pop() {
        seen += 1;
        for &y in &adj[x] {
            indeg[y] -= 1;
            if indeg[y] == 0 {
                queue.push(y);
            }
        }
    }
    seen != n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Asserting random edges one by one: the theory reports a conflict on
    /// exactly the first edge that closes a cycle.
    #[test]
    fn incremental_cycle_detection_matches_offline(
        n in 2usize..10,
        raw_edges in prop::collection::vec((0usize..10, 0usize..10), 1..25),
    ) {
        let mut theory = OrderTheory::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| theory.add_node()).collect();
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .collect();
        let mut accepted: Vec<(usize, usize)> = Vec::new();
        let mut out = TheoryOut::default();
        theory.new_level();
        for (i, &(a, b)) in edges.iter().enumerate() {
            let var = Var::new(i as u32);
            theory.register_atom(var, nodes[a], nodes[b]);
            let result = theory.assert_lit(var.positive(), &mut out);
            let mut candidate = accepted.clone();
            candidate.push((a, b));
            let offline_cyclic = has_cycle(n, &candidate);
            match result {
                Ok(()) => {
                    prop_assert!(!offline_cyclic, "theory accepted a cycle-closing edge {a}->{b}");
                    accepted.push((a, b));
                }
                Err(conflict) => {
                    prop_assert!(offline_cyclic, "theory rejected an acyclic edge {a}->{b}");
                    // The conflict explanation names currently-true literals,
                    // including the newly asserted one.
                    prop_assert!(conflict.lits.contains(&var.positive()));
                }
            }
        }
    }

    /// Backtracking fully undoes edges: after undo, reachability equals the
    /// pre-level state.
    #[test]
    fn backtracking_restores_reachability(
        n in 2usize..8,
        base_edges in prop::collection::vec((0usize..8, 0usize..8), 0..8),
        level_edges in prop::collection::vec((0usize..8, 0usize..8), 1..8),
    ) {
        let mut theory = OrderTheory::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| theory.add_node()).collect();
        // Base edges, acyclic subset only.
        let mut kept = Vec::new();
        for (a, b) in base_edges {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let mut cand = kept.clone();
            cand.push((a, b));
            if !has_cycle(n, &cand) {
                theory.add_fixed_edge(nodes[a], nodes[b]);
                kept.push((a, b));
            }
        }
        let before: Vec<Vec<bool>> = (0..n)
            .map(|i| (0..n).map(|j| theory.reachable(nodes[i], nodes[j])).collect())
            .collect();
        // One level of atom assertions, then undo.
        theory.new_level();
        let mut out = TheoryOut::default();
        for (i, (a, b)) in level_edges.into_iter().enumerate() {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let var = Var::new(1000 + i as u32);
            theory.register_atom(var, nodes[a], nodes[b]);
            let _ = theory.assert_lit(var.positive(), &mut out);
        }
        theory.backtrack_to(0);
        let after: Vec<Vec<bool>> = (0..n)
            .map(|i| (0..n).map(|j| theory.reachable(nodes[i], nodes[j])).collect())
            .collect();
        prop_assert_eq!(before, after);
    }

    /// CDCL(T) with free orientation atoms over a random node set is always
    /// SAT (any DAG orientation exists), and the model is acyclic.
    #[test]
    fn free_orientations_are_satisfiable(
        n in 2usize..7,
        pairs in prop::collection::vec((0usize..7, 0usize..7), 1..12),
    ) {
        let mut theory = OrderTheory::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| theory.add_node()).collect();
        let mut solver: Solver<OrderTheory> = Solver::with_parts(theory, zpre_sat::NoGuide);
        let mut atoms = Vec::new();
        for (a, b) in pairs {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let var = solver.new_var();
            solver.theory.register_atom(var, nodes[a], nodes[b]);
            solver.mark_theory_var(var);
            atoms.push((var, a, b));
        }
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        // Model orientation must be acyclic.
        let edges: Vec<(usize, usize)> = atoms
            .iter()
            .map(|&(v, a, b)| {
                if solver.model_var_value(v).is_true() {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        prop_assert!(!has_cycle(n, &edges));
    }
}
