//! Property tests pitting the incremental cycle-detection engine against
//! the retained full-DFS reference on random interleavings of edge
//! insertion, decision levels, backtracking, and reachability queries.
//!
//! Two `OrderGraph` instances replay the same operation sequence — one in
//! normal (incremental two-way search) mode, one with `force_full_dfs` —
//! and must agree exactly on every accept/reject decision and every
//! reachability answer. A third, trivial mirror (a plain edge list with a
//! BFS) anchors both against an offline oracle. Rejections additionally
//! return a witness path whose every edge must exist in the graph at the
//! current trail level and chain `to ⇝ from`.

use proptest::prelude::*;
use zpre_sat::Var;
use zpre_smt::{CycleEdge, NodeId, OrderGraph};

/// One step of a generated scenario.
#[derive(Clone, Debug)]
enum Op {
    /// Insert `a→b`; `tagged` selects an asserted (literal-tagged) edge
    /// vs a fixed (program-order) edge.
    Insert { a: usize, b: usize, tagged: bool },
    /// Open a decision level.
    Level,
    /// Backtrack to a fraction of the currently open levels.
    Backtrack { keep_pct: u8 },
    /// Compare reachability `a ⇝ b` across engines and the mirror.
    Query { a: usize, b: usize },
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    // The vendored proptest stub's `prop_oneof!` is unweighted; bias the
    // mix toward insertions by repeating that arm.
    let insert = (0..n, 0..n, any::<bool>()).prop_map(|(a, b, tagged)| Op::Insert { a, b, tagged });
    prop_oneof![
        insert.clone(),
        insert.clone(),
        insert,
        Just(Op::Level),
        (0u8..100).prop_map(|keep_pct| Op::Backtrack { keep_pct }),
        (0..n, 0..n).prop_map(|(a, b)| Op::Query { a, b }),
    ]
}

/// Offline reachability on the mirror edge list.
fn mirror_reaches(n: usize, edges: &[(usize, usize)], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(x) = stack.pop() {
        for &y in &adj[x] {
            if y == to {
                return true;
            }
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    false
}

/// The witness for a rejected `from→to` must chain `to ⇝ from` over edges
/// present in the graph right now.
fn check_witness(g: &OrderGraph, from: NodeId, to: NodeId, path: &[CycleEdge]) {
    if from == to {
        assert!(path.is_empty(), "self-loop witness must be empty");
        return;
    }
    assert!(!path.is_empty(), "witness for {from:?}->{to:?} empty");
    assert_eq!(path[0].from, to, "witness must start at the head");
    assert_eq!(
        path.last().unwrap().to,
        from,
        "witness must end at the tail"
    );
    for w in path.windows(2) {
        assert_eq!(w[0].to, w[1].from, "witness must chain");
    }
    for e in path {
        assert!(
            g.out_edges(e.from)
                .iter()
                .any(|o| o.to == e.to && o.tag == e.tag),
            "witness edge {:?}->{:?} not present at the current trail level",
            e.from,
            e.to
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Exact agreement between the incremental engine and the full-DFS
    /// reference over random insert/undo/query interleavings, with every
    /// rejection's witness validated against the live graph.
    #[test]
    fn engines_agree_on_random_scenarios(
        n in 2usize..12,
        ops in prop::collection::vec(op_strategy(12), 1..60),
    ) {
        let mut inc = OrderGraph::new();
        let mut dfs = OrderGraph::new();
        let inodes: Vec<NodeId> = (0..n).map(|_| inc.add_node()).collect();
        let dnodes: Vec<NodeId> = (0..n).map(|_| dfs.add_node()).collect();
        dfs.set_force_full_dfs(true);

        // Mirror state: current edges plus a mark stack for undo.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut marks: Vec<usize> = Vec::new();
        let mut next_var = 0u32;

        for op in ops {
            match op {
                Op::Insert { a, b, tagged } => {
                    let (a, b) = (a % n, b % n);
                    let tag = tagged.then(|| {
                        next_var += 1;
                        Var::new(next_var).positive()
                    });
                    let ri = inc.insert_edge(inodes[a], inodes[b], tag);
                    let rd = dfs.insert_edge(dnodes[a], dnodes[b], tag);
                    prop_assert_eq!(
                        ri.is_ok(),
                        rd.is_ok(),
                        "engines disagree on {}->{}", a, b
                    );
                    let cyclic = a == b || mirror_reaches(n, &edges, b, a);
                    prop_assert_eq!(ri.is_ok(), !cyclic, "offline oracle disagrees");
                    match ri {
                        Ok(_) => edges.push((a, b)),
                        Err(path) => check_witness(&inc, inodes[a], inodes[b], &path),
                    }
                    if let Err(path) = rd {
                        check_witness(&dfs, dnodes[a], dnodes[b], &path);
                    }
                }
                Op::Level => {
                    inc.new_level();
                    dfs.new_level();
                    marks.push(edges.len());
                }
                Op::Backtrack { keep_pct } => {
                    if marks.is_empty() {
                        continue;
                    }
                    let keep = (marks.len() * keep_pct as usize) / 100;
                    inc.backtrack_to(keep as u32);
                    dfs.backtrack_to(keep as u32);
                    edges.truncate(marks[keep]);
                    marks.truncate(keep);
                }
                Op::Query { a, b } => {
                    let (a, b) = (a % n, b % n);
                    let want = mirror_reaches(n, &edges, a, b);
                    prop_assert_eq!(
                        inc.reaches(inodes[a], inodes[b]), want,
                        "incremental reachability {} -> {}", a, b
                    );
                    prop_assert_eq!(
                        dfs.reaches(dnodes[a], dnodes[b]), want,
                        "full-dfs reachability {} -> {}", a, b
                    );
                }
            }
            prop_assert_eq!(inc.num_edges(), edges.len());
            inc.check_level_invariant().map_err(TestCaseError::Fail)?;
        }
    }

    /// The work-counter split `accepted_o1 + searched == checks` holds on
    /// every prefix of every random scenario, in both modes.
    #[test]
    fn counter_split_invariant_holds(
        n in 2usize..10,
        ops in prop::collection::vec(op_strategy(10), 1..40),
        full_dfs in any::<bool>(),
    ) {
        let mut g = OrderGraph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
        g.set_force_full_dfs(full_dfs);
        let mut levels = 0u32;
        for op in ops {
            match op {
                Op::Insert { a, b, tagged } => {
                    let tag = tagged.then(|| Var::new(1).positive());
                    let _ = g.insert_edge(nodes[a % n], nodes[b % n], tag);
                }
                Op::Level => {
                    g.new_level();
                    levels += 1;
                }
                Op::Backtrack { keep_pct } => {
                    let keep = levels * keep_pct as u32 / 100;
                    g.backtrack_to(keep);
                    levels = keep;
                }
                Op::Query { a, b } => {
                    let _ = g.reaches(nodes[a % n], nodes[b % n]);
                }
            }
            let s = g.stats;
            prop_assert_eq!(s.accepted_o1 + s.searched, s.checks);
            if full_dfs {
                prop_assert_eq!(s.accepted_o1, 0);
            }
        }
    }
}
