//! Variable-kind registry: the Boolean-abstraction taxonomy of §3.2.
//!
//! After Boolean abstraction, the verification condition's variables fall
//! into the classes the paper names `V_ssa`, `V_ord`, `V_rf` and `V_ws`
//! (plus guard and auxiliary Tseitin variables, which the paper folds into
//! `V_ssa`). The encoder records the class of every variable it creates
//! here; the decision-order generator in the `zpre` core crate reads the
//! registry to build the priority list.
//!
//! Interference variables are *named* following the paper's recipe
//! (`rf_<rt>_<ri>_<wt>_<wi>`, `ws_<t1>_<i1>_<t2>_<i2>`), mirroring how the
//! modified CBMC communicates thread information to the modified Z3.

use zpre_sat::Var;

/// The class of a Boolean variable in the verification condition.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// Program/data-path variable (a bit of an SSA value, or a Tseitin
    /// auxiliary of the data path) — the paper's `V_ssa`.
    Ssa,
    /// Guard condition of an event or statement (also folded into `V_ssa`
    /// by the paper; kept separate for the branch-heuristic ablation).
    Guard,
    /// Ordering atom `clk(e₁) < clk(e₂)` — the paper's `V_ord`.
    Ord,
    /// Read-from selector — the paper's `V_rf`.
    Rf {
        /// Read and write events belong to different threads (`V_rfe`
        /// vs. `V_rfi` in §4.1).
        external: bool,
        /// `#write`: number of candidate writes of the corresponding read.
        writes: u32,
    },
    /// Write-serialization selector — the paper's `V_ws`.
    Ws,
    /// Anything else (error-condition plumbing etc.).
    Aux,
}

impl VarKind {
    /// `true` for the interference classes `V_rf ∪ V_ws`.
    pub fn is_interference(self) -> bool {
        matches!(self, VarKind::Rf { .. } | VarKind::Ws)
    }
}

/// Metadata for one solver variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// The class.
    pub kind: VarKind,
    /// Human-readable name (paper-style for interference variables).
    pub name: String,
}

/// Registry mapping solver variables to their classes.
#[derive(Default, Clone, Debug)]
pub struct VarRegistry {
    infos: Vec<Option<VarInfo>>,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> VarRegistry {
        VarRegistry::default()
    }

    /// Records `var`'s class and name.
    pub fn register(&mut self, var: Var, kind: VarKind, name: impl Into<String>) {
        let i = var.index();
        if self.infos.len() <= i {
            self.infos.resize_with(i + 1, || None);
        }
        debug_assert!(self.infos[i].is_none(), "variable registered twice");
        self.infos[i] = Some(VarInfo {
            kind,
            name: name.into(),
        });
    }

    /// Metadata for `var`, if registered.
    pub fn info(&self, var: Var) -> Option<&VarInfo> {
        self.infos.get(var.index()).and_then(|o| o.as_ref())
    }

    /// The class of `var` ([`VarKind::Aux`] if unregistered).
    pub fn kind(&self, var: Var) -> VarKind {
        self.info(var).map_or(VarKind::Aux, |i| i.kind)
    }

    /// Iterates over `(var, info)` for all registered variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &VarInfo)> {
        self.infos
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|info| (Var::new(i as u32), info)))
    }

    /// All interference variables (`V_rf ∪ V_ws`), in registration order.
    pub fn interference_vars(&self) -> impl Iterator<Item = (Var, &VarInfo)> {
        self.iter().filter(|(_, info)| info.kind.is_interference())
    }

    /// Count of registered variables per class: `(ssa, guard, ord, rf, ws, aux)`.
    pub fn class_counts(&self) -> ClassCounts {
        let mut c = ClassCounts::default();
        for (_, info) in self.iter() {
            match info.kind {
                VarKind::Ssa => c.ssa += 1,
                VarKind::Guard => c.guard += 1,
                VarKind::Ord => c.ord += 1,
                VarKind::Rf { .. } => c.rf += 1,
                VarKind::Ws => c.ws += 1,
                VarKind::Aux => c.aux += 1,
            }
        }
        c
    }
}

/// Per-class variable counts (for diagnostics and the experiment logs).
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassCounts {
    /// `V_ssa` bits and data-path auxiliaries.
    pub ssa: usize,
    /// Guard variables.
    pub guard: usize,
    /// `V_ord` ordering atoms.
    pub ord: usize,
    /// `V_rf` read-from selectors.
    pub rf: usize,
    /// `V_ws` write-serialization selectors.
    pub ws: usize,
    /// Unclassified.
    pub aux: usize,
}

/// Builds the paper-style name of an RF variable:
/// `rf_<read-thread>_<read-pos>_<write-thread>_<write-pos>`.
pub fn rf_name(
    read_thread: usize,
    read_pos: usize,
    write_thread: usize,
    write_pos: usize,
) -> String {
    format!("rf_{read_thread}_{read_pos}_{write_thread}_{write_pos}")
}

/// Builds the paper-style name of a WS variable.
pub fn ws_name(t1: usize, i1: usize, t2: usize, i2: usize) -> String {
    format!("ws_{t1}_{i1}_{t2}_{i2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let mut r = VarRegistry::new();
        let v0 = Var::new(0);
        let v2 = Var::new(2);
        r.register(v0, VarKind::Ssa, "x_1[0]");
        r.register(
            v2,
            VarKind::Rf {
                external: true,
                writes: 3,
            },
            rf_name(1, 2, 2, 0),
        );
        assert_eq!(r.kind(v0), VarKind::Ssa);
        assert_eq!(r.kind(Var::new(1)), VarKind::Aux);
        assert_eq!(
            r.kind(v2),
            VarKind::Rf {
                external: true,
                writes: 3
            }
        );
        assert_eq!(r.info(v2).unwrap().name, "rf_1_2_2_0");
    }

    #[test]
    fn interference_filter() {
        let mut r = VarRegistry::new();
        r.register(Var::new(0), VarKind::Ord, "ord0");
        r.register(Var::new(1), VarKind::Ws, ws_name(0, 0, 1, 1));
        r.register(
            Var::new(2),
            VarKind::Rf {
                external: false,
                writes: 1,
            },
            rf_name(0, 1, 0, 0),
        );
        let itf: Vec<usize> = r.interference_vars().map(|(v, _)| v.index()).collect();
        assert_eq!(itf, vec![1, 2]);
    }

    #[test]
    fn class_counts() {
        let mut r = VarRegistry::new();
        r.register(Var::new(0), VarKind::Ssa, "a");
        r.register(Var::new(1), VarKind::Ssa, "b");
        r.register(Var::new(2), VarKind::Guard, "g");
        r.register(Var::new(3), VarKind::Ws, "w");
        let c = r.class_counts();
        assert_eq!(
            c,
            ClassCounts {
                ssa: 2,
                guard: 1,
                ord: 0,
                rf: 0,
                ws: 1,
                aux: 0
            }
        );
    }

    #[test]
    fn kind_is_interference() {
        assert!(VarKind::Ws.is_interference());
        assert!(VarKind::Rf {
            external: true,
            writes: 0
        }
        .is_interference());
        assert!(!VarKind::Ord.is_interference());
        assert!(!VarKind::Ssa.is_interference());
    }
}
