//! Standalone re-checker for order-theory lemmas.
//!
//! Certification must not trust the solver's conflict analysis or the
//! theory's incremental DFS: a [`TheoryLemma`] is accepted only if this
//! module can re-derive its validity from first principles. The argument
//! is elementary: assume the negation of the lemma clause. Then every tag
//! literal of the recorded cycle is true, so (by the atom semantics) every
//! tagged edge is present in the event order graph; fixed program-order
//! edges are always present. If those edges form a closed directed cycle,
//! the assignment admits no total order of the events — contradiction — so
//! the clause holds in the theory.
//!
//! The checker therefore verifies, for each lemma:
//!
//! 1. the cycle is non-empty, chained, and closed;
//! 2. every tagged edge is exactly the edge its literal asserts under the
//!    registered atom semantics (`v ↦ (a, b)`: true ⇒ `a→b`, false ⇒
//!    `b→a`), and every untagged edge is a fixed program-order edge;
//! 3. the lemma clause is exactly the set of negated tags — i.e. the
//!    clause rules out precisely the assignment that closes the cycle.
//!
//! Inputs are supplied as closures so the checker shares no code with
//! [`OrderTheory`]'s DFS; [`check_lemma_against`] wires a (post-solve,
//! fully backtracked) theory instance in as the source of atom
//! registrations and fixed edges.

use crate::order::{NodeId, OrderTheory, TheoryLemma};
use zpre_sat::{Lit, Var};

/// Re-checks a single lemma against caller-supplied atom semantics.
///
/// `atom_of` maps a solver variable to its registered ordered pair (`None`
/// when the variable is not an ordering atom); `is_fixed` answers whether a
/// fixed program-order edge exists. Returns a human-readable reason on
/// rejection.
pub fn check_lemma(
    lemma: &TheoryLemma,
    atom_of: impl Fn(Var) -> Option<(NodeId, NodeId)>,
    is_fixed: impl Fn(NodeId, NodeId) -> bool,
) -> Result<(), String> {
    let cycle = &lemma.cycle;
    if cycle.is_empty() {
        return Err("lemma has an empty justifying cycle".to_string());
    }
    // 1. Chained and closed.
    for (i, e) in cycle.iter().enumerate() {
        let next = &cycle[(i + 1) % cycle.len()];
        if e.to != next.from {
            return Err(format!(
                "cycle is not chained: edge {i} ends at node {} but edge {} starts at node {}",
                e.to.0,
                (i + 1) % cycle.len(),
                next.from.0
            ));
        }
    }
    // 2. Every edge is justified.
    for (i, e) in cycle.iter().enumerate() {
        match e.tag {
            Some(l) => {
                let Some((a, b)) = atom_of(l.var()) else {
                    return Err(format!(
                        "edge {i} is tagged by a literal of non-atom variable {}",
                        l.var().index()
                    ));
                };
                let asserted = if l.sign() { (a, b) } else { (b, a) };
                if asserted != (e.from, e.to) {
                    return Err(format!(
                        "edge {i} claims {}→{} but its tag asserts {}→{}",
                        e.from.0, e.to.0, asserted.0 .0, asserted.1 .0
                    ));
                }
            }
            None => {
                if !is_fixed(e.from, e.to) {
                    return Err(format!(
                        "edge {i} ({}→{}) is not a fixed program-order edge",
                        e.from.0, e.to.0
                    ));
                }
            }
        }
    }
    // 3. The clause is exactly the negated tags.
    let mut want: Vec<Lit> = cycle.iter().filter_map(|e| e.tag).map(|l| !l).collect();
    want.sort_unstable();
    want.dedup();
    let mut have = lemma.clause.clone();
    have.sort_unstable();
    have.dedup();
    if want != have {
        return Err(
            "lemma clause is not the negation of the cycle's asserting literals".to_string(),
        );
    }
    Ok(())
}

/// Re-checks a lemma against a theory instance (typically the post-solve
/// theory, which has backtracked to the root so that only fixed edges
/// remain asserted).
pub fn check_lemma_against(theory: &OrderTheory, lemma: &TheoryLemma) -> Result<(), String> {
    check_lemma(
        lemma,
        |v| theory.atom_nodes(v),
        |a, b| theory.is_fixed_edge(a, b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::CycleEdge;
    use zpre_sat::Var;

    fn two_node_theory() -> (OrderTheory, NodeId, NodeId, Var) {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let v = Var::new(0);
        t.register_atom(v, a, b);
        (t, a, b, v)
    }

    #[test]
    fn valid_two_cycle_is_accepted() {
        let (t, a, b, v) = two_node_theory();
        let mut t2 = t;
        let w = Var::new(1);
        t2.register_atom(w, b, a);
        // Clause: ¬v ∨ ¬w — cycle a→b (v true) then b→a (w true).
        let lemma = TheoryLemma {
            clause: vec![v.negative(), w.negative()],
            cycle: vec![
                CycleEdge {
                    from: a,
                    to: b,
                    tag: Some(v.positive()),
                },
                CycleEdge {
                    from: b,
                    to: a,
                    tag: Some(w.positive()),
                },
            ],
        };
        assert_eq!(check_lemma_against(&t2, &lemma), Ok(()));
    }

    #[test]
    fn fixed_edge_closes_the_cycle() {
        let (mut t, a, b, v) = two_node_theory();
        assert!(t.add_fixed_edge(b, a));
        let lemma = TheoryLemma {
            clause: vec![v.negative()],
            cycle: vec![
                CycleEdge {
                    from: a,
                    to: b,
                    tag: Some(v.positive()),
                },
                CycleEdge {
                    from: b,
                    to: a,
                    tag: None,
                },
            ],
        };
        assert_eq!(check_lemma_against(&t, &lemma), Ok(()));
    }

    #[test]
    fn unchained_cycle_is_rejected() {
        let (mut t, a, b, v) = two_node_theory();
        let c = t.add_node();
        let lemma = TheoryLemma {
            clause: vec![v.negative()],
            cycle: vec![
                CycleEdge {
                    from: a,
                    to: b,
                    tag: Some(v.positive()),
                },
                CycleEdge {
                    from: c,
                    to: a,
                    tag: None,
                },
            ],
        };
        assert!(check_lemma_against(&t, &lemma).is_err());
    }

    #[test]
    fn forged_fixed_edge_is_rejected() {
        let (t, a, b, v) = two_node_theory();
        // Claims b→a is fixed, but no such edge was ever added.
        let lemma = TheoryLemma {
            clause: vec![v.negative()],
            cycle: vec![
                CycleEdge {
                    from: a,
                    to: b,
                    tag: Some(v.positive()),
                },
                CycleEdge {
                    from: b,
                    to: a,
                    tag: None,
                },
            ],
        };
        assert!(check_lemma_against(&t, &lemma).is_err());
    }

    #[test]
    fn misoriented_tag_is_rejected() {
        let (mut t, a, b, v) = two_node_theory();
        assert!(t.add_fixed_edge(b, a));
        // The tag ¬v asserts b→a, not a→b as the edge claims.
        let lemma = TheoryLemma {
            clause: vec![v.positive()],
            cycle: vec![
                CycleEdge {
                    from: a,
                    to: b,
                    tag: Some(v.negative()),
                },
                CycleEdge {
                    from: b,
                    to: a,
                    tag: None,
                },
            ],
        };
        assert!(check_lemma_against(&t, &lemma).is_err());
    }

    #[test]
    fn clause_tag_mismatch_is_rejected() {
        let (mut t, a, b, v) = two_node_theory();
        assert!(t.add_fixed_edge(b, a));
        let w = Var::new(7); // unrelated literal smuggled into the clause
        let lemma = TheoryLemma {
            clause: vec![v.negative(), w.positive()],
            cycle: vec![
                CycleEdge {
                    from: a,
                    to: b,
                    tag: Some(v.positive()),
                },
                CycleEdge {
                    from: b,
                    to: a,
                    tag: None,
                },
            ],
        };
        assert!(check_lemma_against(&t, &lemma).is_err());
    }

    #[test]
    fn empty_cycle_is_rejected() {
        let (t, _a, _b, v) = two_node_theory();
        let lemma = TheoryLemma {
            clause: vec![v.negative()],
            cycle: vec![],
        };
        assert!(check_lemma_against(&t, &lemma).is_err());
    }

    /// The journal a real solve produces passes the checker.
    #[test]
    fn journaled_lemmas_from_a_conflict_check_out() {
        use zpre_sat::{Theory, TheoryOut};
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.add_fixed_edge(a, b);
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, b, c);
        t.register_atom(v1, c, a);
        t.enable_lemma_journal();
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(v0.positive(), &mut out).is_ok());
        assert!(t.assert_lit(v1.positive(), &mut out).is_err());
        t.backtrack_to(0);
        let lemmas = t.take_lemmas();
        assert!(!lemmas.is_empty());
        for lemma in &lemmas {
            assert_eq!(check_lemma_against(&t, lemma), Ok(()), "{lemma:?}");
        }
    }
}
