//! # zpre-smt — DPLL(T) layer: event-order theory and variable taxonomy
//!
//! This crate hosts the theory side of the CDCL(T) stack used by `zpre`:
//!
//! - [`order::OrderTheory`] — the event-order-graph acyclicity theory. All
//!   `clk(e₁) < clk(e₂)` atoms of the partial-order encoding become edges;
//!   an assignment is theory-consistent iff the graph is acyclic, which is
//!   exactly the validity criterion for symbolic concurrent executions
//!   (§3.3 of the paper, after Shasha & Snir).
//! - [`kinds::VarRegistry`] — the Boolean-abstraction taxonomy (`V_ssa`,
//!   `V_ord`, `V_rf`, `V_ws`) that the decision-order generator consumes.
//!
//! The theory plugs into [`zpre_sat::Solver`] through the
//! [`zpre_sat::Theory`] trait.

#![warn(missing_docs)]

pub mod certcheck;
pub mod kinds;
pub mod order;

pub use certcheck::{check_lemma, check_lemma_against};
pub use kinds::{rf_name, ws_name, ClassCounts, VarInfo, VarKind, VarRegistry};
pub use order::graph::{CycleStats, OrderGraph};
pub use order::{CycleEdge, NodeId, OrderTheory, TheoryLemma};
