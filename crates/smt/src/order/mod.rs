//! The event-order theory: incremental acyclicity of the event order graph.
//!
//! The partial-order encoding of a multi-threaded program (§3.1 of the
//! paper) reduces every `clk(e₁) < clk(e₂)` atom to an edge in the *event
//! order graph* (EOG). A (partial) assignment to the ordering atoms is
//! theory-consistent iff the EOG is acyclic — a symbolic concurrent
//! execution is valid iff a total order of its events exists (§3.3).
//!
//! This module implements that theory for the DPLL(T) loop of `zpre-sat`:
//!
//! - *fixed edges* model the program order Φ_po (asserted before solving,
//!   never retracted);
//! - each registered *atom* `v ↦ (a, b)` contributes the edge `a→b` when
//!   `v` is assigned true and the reverse edge `b→a` when assigned false
//!   (clock values are total, so ¬(a<b) ⇔ b<a for distinct events);
//! - every asserted edge runs an incremental cycle check in the
//!   [`graph::OrderGraph`] engine: a topological-level comparison accepts
//!   order-respecting edges in O(1), anything else runs a bounded two-way
//!   search (see the module docs of [`graph`]); on a cycle the theory
//!   reports the asserting literals of the cycle's edges as the conflict —
//!   a minimal explanation — with the witness path built lazily from the
//!   search's parent pointers;
//! - asserting `a→b` eagerly propagates `¬atom(b,a)` when such an atom
//!   exists (cheap one-step transitivity), and when the check already ran a
//!   backward search, the frontier it computed — every node known to reach
//!   `a` — drives the same propagation one hop further for free: for each
//!   frontier node `u`, `¬atom(b,u)` is implied with the recorded path as
//!   its explanation. Both can be disabled for ablation.

pub mod graph;

use std::collections::HashMap;
use std::sync::Arc;

use zpre_obs::{Event, EventSink};
use zpre_sat::share::NO_TAG;
use zpre_sat::{CycleEdgeRaw, Lit, Theory, TheoryConflict, TheoryOut, Var};

use graph::{CycleStats, Inserted, OrderGraph};

/// Cap on lemmas buffered for sharing between solver drains. Conflicts can
/// outpace the drain cadence (the solver drains on learn, not per-assert),
/// so the buffer is bounded and overflow is dropped silently.
const SHARE_BUF_CAP: usize = 256;

/// A node of the event order graph (an event, or a virtual fence /
/// spawn / join node).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One edge of a justifying EOG cycle, as recorded in a [`TheoryLemma`].
///
/// `tag` is the literal whose truth asserts the edge (`None` for fixed
/// program-order edges). Under the negation of the lemma clause every tag
/// is true, so the tagged edges — plus the always-present fixed edges —
/// close the cycle that makes the assignment theory-inconsistent.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CycleEdge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// The asserting literal, or `None` for a fixed edge.
    pub tag: Option<Lit>,
}

/// Converts a cycle edge to the node-type-agnostic transport form used by
/// the `zpre-sat` share pool.
fn raw_edge(e: &CycleEdge) -> CycleEdgeRaw {
    CycleEdgeRaw {
        from: e.from.0,
        to: e.to.0,
        tag_code: e.tag.map_or(NO_TAG, |l| l.code() as u32),
    }
}

/// Reconstructs a cycle edge from transport form.
fn cooked_edge(e: &CycleEdgeRaw) -> CycleEdge {
    CycleEdge {
        from: NodeId(e.from),
        to: NodeId(e.to),
        tag: (e.tag_code != NO_TAG).then(|| Lit::from_code(e.tag_code)),
    }
}

/// A theory lemma together with its justification: the clause is valid in
/// the order theory because the edges of `cycle` form a directed cycle in
/// the EOG whenever the clause's negation holds.
#[derive(Clone, Debug)]
pub struct TheoryLemma {
    /// The lemma clause (as emitted to the solver's proof log).
    pub clause: Vec<Lit>,
    /// The closed EOG cycle justifying it, in forward edge order.
    pub cycle: Vec<CycleEdge>,
}

/// The order theory. Implements [`zpre_sat::Theory`]; the graph state lives
/// in the incremental [`graph::OrderGraph`] engine, which keeps its own
/// undo trail in lockstep with this theory's explanation trail.
pub struct OrderTheory {
    /// The incremental cycle-detection engine (adjacency + levels + trail).
    graph: OrderGraph,
    /// Atom registry: solver var → (a, b), true ⇒ a→b, false ⇒ b→a.
    atoms: HashMap<u32, (NodeId, NodeId)>,
    /// For an ordered pair (a, b), every literal that means "edge a→b".
    /// (Usually one, but duplicate atoms over the same pair stay linked.)
    edge_atoms: HashMap<(NodeId, NodeId), Vec<Lit>>,
    /// Eager explanations for literals we propagated.
    expl: HashMap<u32, Vec<Lit>>,
    /// Undo trail of propagated literals (edge undo lives in the engine).
    prop_trail: Vec<Lit>,
    /// `prop_trail` length at each open decision level.
    levels: Vec<usize>,
    /// Whether the fixed edges already contain a cycle.
    fixed_cycle: bool,
    /// Enable one-step reverse propagation (ablation toggle).
    propagate_reverse: bool,
    /// Append-only journal of emitted lemmas with their justifying cycles
    /// (only filled when [`Self::enable_lemma_journal`] was called).
    journal: Vec<TheoryLemma>,
    /// Whether the lemma journal is recording.
    journal_on: bool,
    /// Whether conflict-cycle lemmas are buffered for portfolio sharing.
    share_on: bool,
    /// Buffered shareable lemmas in transport form, drained by the solver's
    /// share-export hook. Bounded by [`SHARE_BUF_CAP`]; overflow drops the
    /// newest (sharing is best-effort, the conflict itself is unaffected).
    share_out: Vec<(Vec<Lit>, Vec<CycleEdgeRaw>)>,
    /// Number of cycle checks performed (diagnostics).
    pub cycle_checks: u64,
    /// Number of cycles detected (theory conflicts raised).
    pub cycles_found: u64,
    /// Structured-event receiver for lemma telemetry (EOG-cycle lengths and
    /// per-check work counters); `None` keeps the emission sites down to a
    /// single branch.
    sink: Option<Arc<dyn EventSink>>,
}

impl Default for OrderTheory {
    fn default() -> Self {
        OrderTheory::new()
    }
}

impl OrderTheory {
    /// Creates an empty theory.
    pub fn new() -> OrderTheory {
        OrderTheory {
            graph: OrderGraph::new(),
            atoms: HashMap::new(),
            edge_atoms: HashMap::new(),
            expl: HashMap::new(),
            prop_trail: Vec::new(),
            levels: Vec::new(),
            fixed_cycle: false,
            propagate_reverse: true,
            journal: Vec::new(),
            journal_on: false,
            share_on: false,
            share_out: Vec::new(),
            cycle_checks: 0,
            cycles_found: 0,
            sink: None,
        }
    }

    /// Installs (or removes) a structured-event sink. The theory streams a
    /// [`Event::TheoryLemma`] with the justifying EOG-cycle length for every
    /// cycle conflict and every reverse-propagation lemma, plus a
    /// counter-only [`Event::CycleCheck`] per asserted ordering atom.
    pub fn set_event_sink(&mut self, sink: Option<Arc<dyn EventSink>>) {
        self.sink = sink;
    }

    #[inline]
    fn emit_lemma(&self, cycle_len: u32) {
        if let Some(s) = &self.sink {
            s.emit(Event::TheoryLemma { cycle_len });
        }
    }

    /// Starts journaling every emitted lemma with its justifying cycle.
    /// The journal is append-only and survives backtracking: certification
    /// matches proof steps against it by clause, so stale entries from
    /// abandoned branches are harmless.
    pub fn enable_lemma_journal(&mut self) {
        self.journal_on = true;
        self.journal.clear();
    }

    /// Takes the recorded lemma journal, leaving journaling enabled.
    pub fn take_lemmas(&mut self) -> Vec<TheoryLemma> {
        std::mem::take(&mut self.journal)
    }

    /// Disables one-step reverse propagation (for the ablation study).
    pub fn set_propagate_reverse(&mut self, on: bool) {
        self.propagate_reverse = on;
    }

    /// Forces every cycle check through the retained full-DFS oracle
    /// instead of the incremental two-way search (the pre-incremental
    /// algorithm; ablation / before-after benchmarks).
    pub fn set_full_dfs_check(&mut self, on: bool) {
        self.graph.set_force_full_dfs(on);
    }

    /// The engine's work counters (checks / O(1) accepts / searches /
    /// visited nodes / level promotions).
    pub fn cycle_stats(&self) -> CycleStats {
        self.graph.stats
    }

    /// Allocates a fresh EOG node.
    pub fn add_node(&mut self) -> NodeId {
        self.graph.add_node()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Adds a fixed (program-order) edge `a→b`. Must be called at the root
    /// level: before the first solve, or between incremental solve calls
    /// (the solver backtracks to the root after every answer, so the fixed
    /// skeleton, its topological levels, and any root-level asserted edges
    /// all persist and new frames may extend them). Duplicate parallel
    /// fixed edges are skipped. Returns `false` if the edge closes a cycle
    /// among fixed edges — an encoding bug the caller should surface.
    pub fn add_fixed_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a != b && self.is_fixed_edge(a, b) {
            return true;
        }
        match self.graph.insert_edge(a, b, None) {
            Ok(_) => {
                self.cycle_checks += 1;
                true
            }
            Err(_) => {
                self.cycle_checks += 1;
                self.fixed_cycle = true;
                false
            }
        }
    }

    /// Registers a solver variable as the ordering atom for `(a, b)`:
    /// the variable true means `clk(a) < clk(b)`, false means the reverse.
    ///
    /// The caller must also mark the variable on the solver with
    /// [`zpre_sat::Solver::mark_theory_var`].
    pub fn register_atom(&mut self, var: Var, a: NodeId, b: NodeId) {
        debug_assert_ne!(a, b, "ordering atom over a single event");
        self.atoms.insert(var.index() as u32, (a, b));
        self.edge_atoms
            .entry((a, b))
            .or_default()
            .push(var.positive());
        self.edge_atoms
            .entry((b, a))
            .or_default()
            .push(var.negative());
    }

    /// The pair registered for `var`, if any.
    pub fn atom_nodes(&self, var: Var) -> Option<(NodeId, NodeId)> {
        self.atoms.get(&(var.index() as u32)).copied()
    }

    /// `true` if the fixed edges alone are cyclic.
    pub fn has_fixed_cycle(&self) -> bool {
        self.fixed_cycle
    }

    /// `true` if `to` is currently reachable from `from`. A `&self` query:
    /// the DFS scratch lives inside the engine behind interior mutability,
    /// so certification re-checks don't need mutable access.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.graph.reaches(from, to)
    }

    /// `true` if the fixed (program-order) edge `a→b` exists. Post-solve
    /// the solver has backtracked to the root, so only fixed and root-level
    /// edges remain — this is the predicate certification re-checks.
    pub fn is_fixed_edge(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.graph.num_nodes()
            && self
                .graph
                .out_edges(a)
                .iter()
                .any(|e| e.to == b && e.tag.is_none())
    }

    /// Current topological order of all nodes, if the graph is acyclic.
    /// Used for model extraction (concrete clock values).
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.graph.num_nodes();
        let mut indeg = vec![0usize; n];
        for u in 0..n as u32 {
            for e in self.graph.out_edges(NodeId(u)) {
                indeg[e.to.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|x| indeg[x.index()] == 0)
            .collect();
        let mut out = Vec::with_capacity(n);
        while let Some(x) = queue.pop() {
            out.push(x);
            for e in self.graph.out_edges(x) {
                indeg[e.to.index()] -= 1;
                if indeg[e.to.index()] == 0 {
                    queue.push(e.to);
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// Clock value per node derived from [`Self::topological_order`]:
    /// `clock[v]` is the position of node `v`. `None` if cyclic.
    pub fn clock_values(&self) -> Option<Vec<u32>> {
        let order = self.topological_order()?;
        let mut clock = vec![0u32; self.graph.num_nodes()];
        for (i, n) in order.iter().enumerate() {
            clock[n.index()] = i as u32;
        }
        Some(clock)
    }

    /// Records the implication `expl ⊨ q` if `q` has no explanation yet:
    /// stores the explanation, journals the lemma (clause `q ∨ ¬expl`
    /// justified by `cycle`), and queues the propagation.
    fn push_propagation(
        &mut self,
        q: Lit,
        expl: &[Lit],
        cycle: impl FnOnce() -> Vec<CycleEdge>,
        cycle_len: u32,
        out: &mut TheoryOut,
    ) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.expl.entry(q.code() as u32) {
            e.insert(expl.to_vec());
            self.prop_trail.push(q);
            self.emit_lemma(cycle_len);
            if self.journal_on {
                let mut clause = vec![q];
                clause.extend(expl.iter().map(|&l| !l));
                self.journal.push(TheoryLemma {
                    clause,
                    cycle: cycle(),
                });
            }
            out.propagations.push(q);
        }
    }
}

impl Theory for OrderTheory {
    fn assert_lit(&mut self, lit: Lit, out: &mut TheoryOut) -> Result<(), TheoryConflict> {
        let Some(&(a, b)) = self.atoms.get(&(lit.var().index() as u32)) else {
            return Ok(()); // not an ordering atom
        };
        let (from, to) = if lit.sign() { (a, b) } else { (b, a) };

        // Would the new edge close a cycle? A path to→…→from plus the new
        // edge from→to is a cycle. The engine answers via the level
        // comparison or the bounded two-way search; the witness path is
        // only materialized on rejection.
        self.cycle_checks += 1;
        let pre = self.graph.stats;
        let res = self.graph.insert_edge(from, to, Some(lit));
        if let Some(s) = &self.sink {
            let d = self.graph.stats;
            s.emit(Event::CycleCheck {
                visited: (d.visited - pre.visited) as u32,
                promoted: (d.promoted - pre.promoted) as u32,
                accepted_o1: res == Ok(Inserted::AcceptedO1),
            });
        }

        let ins = match res {
            Err(path) => {
                self.cycles_found += 1;
                // The justifying cycle is the path to→…→from plus the new edge.
                self.emit_lemma(path.len() as u32 + 1);
                let mut path_lits: Vec<Lit> = path.iter().filter_map(|e| e.tag).collect();
                path_lits.push(lit);
                if self.journal_on || self.share_on {
                    let mut cycle = vec![CycleEdge {
                        from,
                        to,
                        tag: Some(lit),
                    }];
                    cycle.extend(path);
                    let clause: Vec<Lit> = path_lits.iter().map(|&l| !l).collect();
                    if self.share_on && self.share_out.len() < SHARE_BUF_CAP {
                        self.share_out
                            .push((clause.clone(), cycle.iter().map(raw_edge).collect()));
                    }
                    if self.journal_on {
                        self.journal.push(TheoryLemma { clause, cycle });
                    }
                }
                // All literals are true; their conjunction is inconsistent.
                return Err(TheoryConflict { lits: path_lits });
            }
            Ok(ins) => ins,
        };

        if self.propagate_reverse {
            // One-step: other atoms over the same pair are implied true...
            let mut implied: Vec<Lit> = Vec::new();
            if let Some(same) = self.edge_atoms.get(&(from, to)) {
                implied.extend(same.iter().copied().filter(|&l| l != lit));
            }
            // ...and the reverse edge is now impossible (one-step
            // transitivity; longer cycles are left to the cycle check).
            if let Some(rev) = self.edge_atoms.get(&(to, from)) {
                implied.extend(rev.iter().map(|&l| !l).filter(|&l| l != lit));
            }
            for q in implied {
                // The explanation clause q ∨ ¬lit is justified by the
                // 2-cycle its negation (¬q ∧ lit) would create.
                self.push_propagation(
                    q,
                    &[lit],
                    || {
                        vec![
                            CycleEdge {
                                from,
                                to,
                                tag: Some(lit),
                            },
                            CycleEdge {
                                from: to,
                                to: from,
                                tag: Some(!q),
                            },
                        ]
                    },
                    2,
                    out,
                );
            }

            // Frontier-driven: the backward pass already proved u ⇝ from for
            // every frontier node u, so an edge to→u would close the cycle
            // to→u ⇝ from→to. Negate any atom that would assert one.
            if ins == Inserted::Searched {
                let frontier: Vec<NodeId> = self.graph.frontier().to_vec();
                for u in frontier {
                    if u == from {
                        continue; // handled by the one-step case above
                    }
                    let Some(list) = self.edge_atoms.get(&(to, u)) else {
                        continue;
                    };
                    let implied: Vec<Lit> = list
                        .iter()
                        .map(|&l| !l)
                        .filter(|&q| q != lit && q != !lit)
                        .collect();
                    if implied.is_empty() {
                        continue;
                    }
                    let path = self.graph.backward_path(u, from);
                    let mut expl: Vec<Lit> = path.iter().filter_map(|e| e.tag).collect();
                    expl.push(lit);
                    let cycle_len = path.len() as u32 + 2;
                    for q in implied {
                        self.push_propagation(
                            q,
                            &expl,
                            || {
                                // Closed cycle to→u ⇝ from→to, justifying
                                // clause q ∨ ¬expl.
                                let mut cycle = vec![CycleEdge {
                                    from: to,
                                    to: u,
                                    tag: Some(!q),
                                }];
                                cycle.extend(path.iter().copied());
                                cycle.push(CycleEdge {
                                    from,
                                    to,
                                    tag: Some(lit),
                                });
                                cycle
                            },
                            cycle_len,
                            out,
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn new_level(&mut self) {
        self.levels.push(self.prop_trail.len());
        self.graph.new_level();
    }

    fn backtrack_to(&mut self, level: u32) {
        self.graph.backtrack_to(level);
        let target = level as usize;
        if target >= self.levels.len() {
            return;
        }
        let keep = self.levels[target];
        self.levels.truncate(target);
        while self.prop_trail.len() > keep {
            let lit = self.prop_trail.pop().expect("trail length checked");
            self.expl.remove(&(lit.code() as u32));
        }
    }

    fn explain(&mut self, lit: Lit) -> Vec<Lit> {
        self.expl
            .get(&(lit.code() as u32))
            .cloned()
            .expect("explanation requested for a literal the theory did not propagate")
    }

    fn enable_share_capture(&mut self) {
        self.share_on = true;
        self.share_out.clear();
    }

    fn drain_shared_lemmas(&mut self, out: &mut Vec<(Vec<Lit>, Vec<CycleEdgeRaw>)>) {
        out.append(&mut self.share_out);
    }

    fn absorb_shared_lemma(&mut self, clause: &[Lit], cycle: &[CycleEdgeRaw]) {
        // An imported cycle lemma joins the journal so certification can
        // match the clause like a locally derived one. All portfolio
        // members encode the same SSA instance, so the node indices and
        // atom registrations line up; the certifier re-checks the cycle
        // against this member's registry, never trusting the exporter.
        if self.journal_on {
            self.journal.push(TheoryLemma {
                clause: clause.to_vec(),
                cycle: cycle.iter().map(cooked_edge).collect(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zpre_sat::{SolveResult, Solver};

    #[test]
    fn fixed_edges_detect_cycles() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        assert!(t.add_fixed_edge(a, b));
        assert!(t.add_fixed_edge(b, c));
        assert!(!t.add_fixed_edge(c, a));
        assert!(t.has_fixed_cycle());
    }

    #[test]
    fn share_capture_round_trips_through_transport_form() {
        use crate::certcheck::check_lemma_against;
        // Exporter: a 3-node cycle (one fixed edge, two atoms) raises a
        // conflict whose lemma lands in the share buffer.
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.add_fixed_edge(a, b);
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, b, c);
        t.register_atom(v1, c, a);
        t.enable_share_capture();
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(v0.positive(), &mut out).is_ok());
        assert!(t.assert_lit(v1.positive(), &mut out).is_err());
        t.backtrack_to(0);
        let mut drained = Vec::new();
        t.drain_shared_lemmas(&mut drained);
        assert_eq!(drained.len(), 1);
        // A second drain yields nothing (buffer was taken).
        let mut again = Vec::new();
        t.drain_shared_lemmas(&mut again);
        assert!(again.is_empty());

        // Importer: an identically encoded theory absorbs the lemma into
        // its journal, and the certifier re-checks it from first principles.
        let mut imp = OrderTheory::new();
        let ia = imp.add_node();
        let ib = imp.add_node();
        let _ic = imp.add_node();
        imp.add_fixed_edge(ia, ib);
        imp.register_atom(v0, NodeId(1), NodeId(2));
        imp.register_atom(v1, NodeId(2), NodeId(0));
        imp.enable_lemma_journal();
        let (clause, cycle) = &drained[0];
        imp.absorb_shared_lemma(clause, cycle);
        let lemmas = imp.take_lemmas();
        assert_eq!(lemmas.len(), 1);
        assert_eq!(lemmas[0].clause, *clause);
        assert_eq!(check_lemma_against(&imp, &lemmas[0]), Ok(()));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        assert!(!t.add_fixed_edge(a, a));
    }

    #[test]
    fn duplicate_fixed_edges_are_skipped() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        assert!(t.add_fixed_edge(a, b));
        assert!(t.add_fixed_edge(a, b));
        assert!(t.add_fixed_edge(a, b));
        assert_eq!(t.graph.num_edges(), 1, "parallel fixed edges deduplicated");
        // The duplicate calls don't re-run the cycle check either.
        assert_eq!(t.cycle_checks, 1);
    }

    #[test]
    fn reachability() {
        let mut t = OrderTheory::new();
        let n: Vec<NodeId> = (0..4).map(|_| t.add_node()).collect();
        t.add_fixed_edge(n[0], n[1]);
        t.add_fixed_edge(n[1], n[2]);
        assert!(t.reachable(n[0], n[2]));
        assert!(!t.reachable(n[2], n[0]));
        assert!(!t.reachable(n[0], n[3]));
        assert!(t.reachable(n[3], n[3]));
    }

    #[test]
    fn reachable_is_a_shared_query() {
        // `reachable` takes &self: usable through a shared reference, as the
        // certification re-checks do post-solve.
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        t.add_fixed_edge(a, b);
        let shared: &OrderTheory = &t;
        assert!(shared.reachable(a, b));
        assert!(!shared.reachable(b, a));
    }

    #[test]
    fn assert_edge_conflict_has_minimal_explanation() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.add_fixed_edge(a, b);
        let mut out = TheoryOut::default();
        // atom v0: b < c ; atom v1: c < a
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, b, c);
        t.register_atom(v1, c, a);
        t.new_level();
        assert!(t.assert_lit(v0.positive(), &mut out).is_ok());
        let err = t.assert_lit(v1.positive(), &mut out).unwrap_err();
        // Cycle a→b→c→a: asserting lits are v0 and v1 (fixed edge has none).
        let mut lits = err.lits.clone();
        lits.sort();
        assert_eq!(lits, vec![v0.positive(), v1.positive()]);
    }

    #[test]
    fn reverse_atom_is_propagated() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, a, b);
        t.register_atom(v1, b, a);
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(v0.positive(), &mut out).is_ok());
        // Edge a→b now exists; atom v1 (b→a when true) must become false.
        assert_eq!(out.propagations, vec![v1.negative()]);
        assert_eq!(t.explain(v1.negative()), vec![v0.positive()]);
    }

    #[test]
    fn frontier_propagates_transitive_reverse_atoms() {
        // Assert a→b then b→c with an atom over (c, a) registered: c→a
        // would close the 3-cycle, so the atom is negated eagerly — one
        // hop beyond the old one-step propagation. (Asserted edges, not
        // fixed ones: fixed edges stratify levels eagerly, and the
        // backward frontier only spans the tail's own level.)
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        let vab = Var::new(0);
        let vbc = Var::new(1);
        let vca = Var::new(2);
        t.register_atom(vab, a, b);
        t.register_atom(vbc, b, c);
        t.register_atom(vca, c, a);
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(vab.positive(), &mut out).is_ok());
        assert!(t.assert_lit(vbc.positive(), &mut out).is_ok());
        assert!(
            out.propagations.contains(&vca.negative()),
            "frontier propagation must negate the cycle-closing atom, got {:?}",
            out.propagations
        );
        // The explanation chains the path tags + the asserted lit.
        assert_eq!(
            t.explain(vca.negative()),
            vec![vab.positive(), vbc.positive()]
        );
    }

    #[test]
    fn frontier_propagation_journals_valid_cycles() {
        let mut t = OrderTheory::new();
        t.enable_lemma_journal();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        let vab = Var::new(0);
        let vbc = Var::new(1);
        let vca = Var::new(2);
        t.register_atom(vab, a, b);
        t.register_atom(vbc, b, c);
        t.register_atom(vca, c, a);
        let mut out = TheoryOut::default();
        t.new_level();
        t.assert_lit(vab.positive(), &mut out).unwrap();
        t.assert_lit(vbc.positive(), &mut out).unwrap();
        let lemmas = t.take_lemmas();
        assert!(!lemmas.is_empty());
        for lemma in &lemmas {
            // Chained and closed.
            for w in lemma.cycle.windows(2) {
                assert_eq!(w[0].to, w[1].from);
            }
            assert_eq!(
                lemma.cycle.first().unwrap().from,
                lemma.cycle.last().unwrap().to
            );
        }
    }

    #[test]
    fn no_reverse_propagation_when_disabled() {
        let mut t = OrderTheory::new();
        t.set_propagate_reverse(false);
        let a = t.add_node();
        let b = t.add_node();
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, a, b);
        t.register_atom(v1, b, a);
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(v0.positive(), &mut out).is_ok());
        assert!(out.propagations.is_empty());
    }

    #[test]
    fn backtracking_removes_edges_and_explanations() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, a, b);
        t.register_atom(v1, b, a);
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(v0.positive(), &mut out).is_ok());
        assert!(t.reachable(a, b));
        t.backtrack_to(0);
        assert!(!t.reachable(a, b));
        // After undo the reverse edge may be asserted without conflict.
        out.clear();
        t.new_level();
        assert!(t.assert_lit(v1.positive(), &mut out).is_ok());
        assert!(t.reachable(b, a));
    }

    #[test]
    fn negative_assignment_means_reverse_edge() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let v0 = Var::new(0);
        t.register_atom(v0, a, b);
        let mut out = TheoryOut::default();
        t.new_level();
        assert!(t.assert_lit(v0.negative(), &mut out).is_ok());
        assert!(t.reachable(b, a));
        assert!(!t.reachable(a, b));
    }

    #[test]
    fn topological_order_and_clocks() {
        let mut t = OrderTheory::new();
        let n: Vec<NodeId> = (0..4).map(|_| t.add_node()).collect();
        t.add_fixed_edge(n[0], n[1]);
        t.add_fixed_edge(n[1], n[2]);
        t.add_fixed_edge(n[0], n[3]);
        let clock = t.clock_values().expect("acyclic");
        assert!(clock[n[0].index()] < clock[n[1].index()]);
        assert!(clock[n[1].index()] < clock[n[2].index()]);
        assert!(clock[n[0].index()] < clock[n[3].index()]);
    }

    #[test]
    fn topological_order_none_when_cyclic() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        t.add_fixed_edge(a, b);
        // Force a cycle directly through the adjacency (bypassing the check
        // is not possible through the public API, so emulate via atoms).
        let v0 = Var::new(0);
        t.register_atom(v0, b, a);
        let mut out = TheoryOut::default();
        t.new_level();
        // b→a would close the cycle — the theory refuses it.
        assert!(t.assert_lit(v0.positive(), &mut out).is_err());
        // Graph stays acyclic, topological order exists.
        assert!(t.topological_order().is_some());
    }

    #[test]
    fn cycle_stats_split_holds() {
        let mut t = OrderTheory::new();
        let n: Vec<NodeId> = (0..6).map(|_| t.add_node()).collect();
        for w in n.windows(2) {
            t.add_fixed_edge(w[0], w[1]);
        }
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        t.register_atom(v0, n[0], n[4]);
        t.register_atom(v1, n[5], n[0]);
        let mut out = TheoryOut::default();
        t.new_level();
        let _ = t.assert_lit(v0.positive(), &mut out);
        let _ = t.assert_lit(v1.positive(), &mut out);
        let s = t.cycle_stats();
        assert_eq!(s.accepted_o1 + s.searched, s.checks);
        assert_eq!(s.checks, t.cycle_checks);
    }

    /// End-to-end: the order theory inside the CDCL(T) loop.
    #[test]
    fn dpllt_finds_total_order() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        let mut s: Solver<OrderTheory> = Solver::with_parts(t, zpre_sat::NoGuide);
        let vab = s.new_var();
        let vbc = s.new_var();
        let vca = s.new_var();
        s.theory.register_atom(vab, a, b);
        s.theory.register_atom(vbc, b, c);
        s.theory.register_atom(vca, c, a);
        for v in [vab, vbc, vca] {
            s.mark_theory_var(v);
        }
        // No boolean constraints: any acyclic orientation works.
        assert_eq!(s.solve(), SolveResult::Sat);
        // The model must be an acyclic orientation: check by re-asserting.
        let mut check = OrderTheory::new();
        let ca = check.add_node();
        let cb = check.add_node();
        let cc = check.add_node();
        let pairs = [(vab, ca, cb), (vbc, cb, cc), (vca, cc, ca)];
        for (v, x, y) in pairs {
            let (f, t_) = if s.model_var_value(v).is_true() {
                (x, y)
            } else {
                (y, x)
            };
            assert!(
                !check.reachable(t_, f),
                "model orientation must stay acyclic"
            );
            assert!(check.add_fixed_edge(f, t_));
        }
    }

    /// Forcing all three edges of a triangle must be UNSAT.
    #[test]
    fn dpllt_cycle_is_unsat() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        let mut s: Solver<OrderTheory> = Solver::with_parts(t, zpre_sat::NoGuide);
        let vab = s.new_var();
        let vbc = s.new_var();
        let vca = s.new_var();
        s.theory.register_atom(vab, a, b);
        s.theory.register_atom(vbc, b, c);
        s.theory.register_atom(vca, c, a);
        for v in [vab, vbc, vca] {
            s.mark_theory_var(v);
            s.add_clause(&[v.positive()]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Incremental use: new events, fixed edges, and atoms may join the
    /// theory between solve calls at the root level; the existing skeleton
    /// and its levels carry over.
    #[test]
    fn accepts_new_events_and_atoms_between_solves() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let mut s: Solver<OrderTheory> = Solver::with_parts(t, zpre_sat::NoGuide);
        let vab = s.new_var();
        s.theory.register_atom(vab, a, b);
        s.mark_theory_var(vab);
        s.add_clause(&[vab.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Root level after the answer: extend the EOG with a fresh event,
        // a fixed edge, and a new ordering atom.
        let c = s.theory.add_node();
        assert!(s.theory.add_fixed_edge(b, c));
        let vca = s.new_var();
        s.theory.register_atom(vca, c, a);
        s.mark_theory_var(vca);
        assert_eq!(s.solve(), SolveResult::Sat);
        // The root-level a→b edge persisted, so c<a must come out false —
        // it would close a→b→c→a.
        assert!(s.model_var_value(vca).is_false());
        // Forcing it is unsatisfiable.
        s.add_clause(&[vca.positive()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Frame-style use: per-call assumptions toggle guarded ordering atoms
    /// over a fixed skeleton that persists across calls.
    #[test]
    fn assumption_frames_share_the_fixed_skeleton() {
        let mut t = OrderTheory::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.add_fixed_edge(a, b);
        let mut s: Solver<OrderTheory> = Solver::with_parts(t, zpre_sat::NoGuide);
        let vbc = s.new_var();
        let vca = s.new_var();
        s.theory.register_atom(vbc, b, c);
        s.theory.register_atom(vca, c, a);
        for v in [vbc, vca] {
            s.mark_theory_var(v);
        }
        let g1 = s.new_var();
        let g2 = s.new_var();
        // Frame 1 requires b<c; frame 2 additionally requires c<a.
        s.add_clause(&[g1.negative(), vbc.positive()]);
        s.add_clause(&[g2.negative(), vbc.positive()]);
        s.add_clause(&[g2.negative(), vca.positive()]);
        assert_eq!(s.solve_with_assumptions(&[g1.positive()]), SolveResult::Sat);
        assert!(s.model_var_value(vbc).is_true());
        // a→b→c plus c→a cycles: frame 2 is Unsat, core names g2 only.
        assert_eq!(
            s.solve_with_assumptions(&[g2.positive(), g1.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(s.assumption_core(), &[g2.positive()]);
        // Frame 1 is still Sat afterwards; the skeleton survived.
        assert_eq!(s.solve_with_assumptions(&[g1.positive()]), SolveResult::Sat);
        assert!(s.theory.is_fixed_edge(a, b));
    }

    /// A long chain with one boolean selector per edge direction; forcing a
    /// back edge makes it UNSAT through theory conflicts only.
    #[test]
    fn dpllt_chain_with_back_edge() {
        const N: usize = 12;
        let mut t = OrderTheory::new();
        let nodes: Vec<NodeId> = (0..N).map(|_| t.add_node()).collect();
        for w in nodes.windows(2) {
            t.add_fixed_edge(w[0], w[1]);
        }
        let first = nodes[0];
        let last = nodes[N - 1];
        let mut s: Solver<OrderTheory> = Solver::with_parts(t, zpre_sat::NoGuide);
        let back = s.new_var();
        s.theory.register_atom(back, last, first);
        s.mark_theory_var(back);
        // back=true ⇒ last<first ⇒ cycle. back must be false.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_var_value(back).is_false());
        // Now force it true: UNSAT.
        s.add_clause(&[back.positive()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
