//! Incremental cycle detection for the event order graph.
//!
//! The engine maintains a *pseudo-topological level* `k(v)` per node with the
//! invariant `k(u) ≤ k(v)` for every edge `u→v`, in the style of
//! Bender–Fineman–Gilbert–Tarjan ("A New Approach to Incremental Cycle
//! Detection and Related Problems", ACM TALG 2016). Inserting `a→b`:
//!
//! - if `k(a) < k(b)` the edge respects the order and is accepted in O(1) —
//!   the common case once the level structure has settled;
//! - otherwise a *backward* search from `a` walks in-edges restricted to
//!   level `k(a)`, scanning at most Δ ≈ √m arcs. Finding `b` means a path
//!   `b ⇝ a` exists and the edge closes a cycle;
//! - if the backward pass completes without finding `b` and `k(b) = k(a)`,
//!   the invariant already holds and no further work is needed: any path
//!   `b ⇝ a` would run entirely inside level `k(a)` (levels are monotone
//!   along paths) and the complete backward pass would have met it;
//! - otherwise `b` is promoted — to `k(a)` if the backward pass completed,
//!   to `k(a)+1` if it hit the Δ bound — and a *forward* search from `b`
//!   promotes successors to restore the invariant, detecting a cycle when it
//!   reaches `a` or any node the backward pass visited.
//!
//! Deviations from the published algorithm, chosen for undo-friendliness:
//! in-adjacency lists hold *all* in-edges (filtered by level at search time)
//! rather than same-level edges only, so insertion and retraction are a
//! symmetric push/pop; and levels are restored exactly on backtracking via a
//! trail of `Level` ops instead of being kept as a monotone approximation.
//! Exact restoration keeps runs reproducible regardless of the search path
//! that led to a state, which the certification layer relies on.
//!
//! A cycle's edge path is materialized lazily, only when an insertion is
//! rejected, from the parent pointers the two searches already left behind —
//! the accept path allocates nothing.
//!
//! Under `debug_assertions` every insertion is double-checked against the
//! retained full-DFS oracle ([`OrderGraph::dfs_path`]), which is also the
//! reference implementation the microbenchmarks and the ablation strategy
//! (`force_full_dfs`) measure against.

use std::cell::RefCell;
use std::collections::HashMap;

use zpre_sat::Lit;

use super::{CycleEdge, NodeId};

/// An out-edge: target node and the asserting literal (`None` = fixed edge).
#[derive(Copy, Clone, Debug)]
pub struct OutEdge {
    /// Target node.
    pub to: NodeId,
    /// The literal whose truth asserts the edge; `None` for fixed edges.
    pub tag: Option<Lit>,
}

/// An in-edge: source node and the asserting literal (`None` = fixed edge).
#[derive(Copy, Clone, Debug)]
pub struct InEdge {
    /// Source node.
    pub from: NodeId,
    /// The literal whose truth asserts the edge; `None` for fixed edges.
    pub tag: Option<Lit>,
}

/// Work counters for cycle checking. `accepted_o1 + searched == checks`
/// always holds (in forced-full-DFS mode every check counts as searched).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Edge insertions checked.
    pub checks: u64,
    /// Insertions accepted in O(1) by the level invariant.
    pub accepted_o1: u64,
    /// Insertions that ran a search (two-way bounded, or full DFS).
    pub searched: u64,
    /// Nodes visited by all searches.
    pub visited: u64,
    /// Level promotions performed by forward passes.
    pub promoted: u64,
}

/// How an accepted insertion was validated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Inserted {
    /// Accepted by the level comparison alone; no search ran and the
    /// backward frontier is empty.
    AcceptedO1,
    /// Accepted after a two-way search; [`OrderGraph::frontier`] holds the
    /// backward-visited set until the next insertion.
    Searched,
}

/// Undoable graph operations.
enum GraphOp {
    /// An edge was appended to `out[from]` and `inn[to]`.
    Edge { from: NodeId, to: NodeId },
    /// `level[node]` was raised from `old`.
    Level { node: NodeId, old: u32 },
}

/// Scratch for `&self` reachability queries (interior mutability so
/// post-solve certification re-checks don't need a mutable theory).
#[derive(Default)]
struct QueryScratch {
    stamp: Vec<u32>,
    gen: u32,
    parent: Vec<(NodeId, Option<Lit>)>,
    stack: Vec<NodeId>,
}

/// The incremental event-order-graph engine. Tracks adjacency, per-node
/// levels and an undo trail; the [`OrderTheory`](super::OrderTheory) drives
/// it from the DPLL(T) callbacks.
pub struct OrderGraph {
    out: Vec<Vec<OutEdge>>,
    inn: Vec<Vec<InEdge>>,
    /// Pseudo-topological level per node (`k(u) ≤ k(v)` along every edge).
    level: Vec<u32>,
    /// Undo trail of edge pushes and level promotions.
    trail: Vec<GraphOp>,
    /// `trail` length at each open decision level.
    marks: Vec<usize>,
    num_edges: usize,
    /// Backward-search scratch: visit stamps and parent edges.
    bstamp: Vec<u32>,
    bgen: u32,
    /// `bparent[x] = (succ, tag)`: the edge `x→succ` on a path from `x` to
    /// the backward root (the inserted edge's tail).
    bparent: Vec<(NodeId, Option<Lit>)>,
    /// `fparent[y] = (pred, tag)`: the edge `pred→y` along the forward pass.
    fparent: Vec<(NodeId, Option<Lit>)>,
    /// Shared explicit stack for both passes.
    stack: Vec<NodeId>,
    /// Multiplicity of each directed edge currently present; parallel
    /// duplicates are accepted in O(1) since they cannot change
    /// reachability.
    edge_count: HashMap<(u32, u32), u32>,
    /// Backward-visited set of the last searched insertion (tail included).
    /// Every member reaches the tail within its level; the theory uses this
    /// to drive implied-atom propagation without extra traversals.
    frontier: Vec<NodeId>,
    query: RefCell<QueryScratch>,
    /// Ablation/benchmark mode: check every insertion with a full DFS
    /// (the pre-incremental algorithm) instead of the two-way search.
    force_full_dfs: bool,
    /// Work counters.
    pub stats: CycleStats,
}

impl Default for OrderGraph {
    fn default() -> Self {
        OrderGraph::new()
    }
}

impl OrderGraph {
    /// Creates an empty graph.
    pub fn new() -> OrderGraph {
        OrderGraph {
            out: Vec::new(),
            inn: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            marks: Vec::new(),
            num_edges: 0,
            bstamp: Vec::new(),
            bgen: 0,
            bparent: Vec::new(),
            fparent: Vec::new(),
            stack: Vec::new(),
            edge_count: HashMap::new(),
            frontier: Vec::new(),
            query: RefCell::new(QueryScratch::default()),
            force_full_dfs: false,
            stats: CycleStats::default(),
        }
    }

    /// Allocates a fresh node at level 0.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.out.len() as u32);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.level.push(0);
        self.bstamp.push(0);
        self.bparent.push((id, None));
        self.fparent.push((id, None));
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Current level of a node (exposed for tests and diagnostics).
    pub fn level_of(&self, n: NodeId) -> u32 {
        self.level[n.index()]
    }

    /// Out-edges of a node.
    pub fn out_edges(&self, n: NodeId) -> &[OutEdge] {
        &self.out[n.index()]
    }

    /// Forces every insertion through the retained full-DFS check instead of
    /// the incremental two-way search (ablation / before-after benchmarks).
    pub fn set_force_full_dfs(&mut self, on: bool) {
        self.force_full_dfs = on;
    }

    /// The backward-visited set of the most recent [`Inserted::Searched`]
    /// insertion: nodes that reach that edge's tail. Invalidated by the next
    /// insertion, undo, or query.
    pub fn frontier(&self) -> &[NodeId] {
        &self.frontier
    }

    /// The within-level path `u ⇝ root` recorded by the last backward pass,
    /// as forward-ordered edges. `u` must be in [`OrderGraph::frontier`] and
    /// `root` the tail of the edge that triggered the search.
    pub fn backward_path(&self, u: NodeId, root: NodeId) -> Vec<CycleEdge> {
        let mut path = Vec::new();
        let mut cur = u;
        while cur != root {
            let (succ, tag) = self.bparent[cur.index()];
            path.push(CycleEdge {
                from: cur,
                to: succ,
                tag,
            });
            cur = succ;
        }
        path
    }

    /// Inserts `from→to` if it keeps the graph acyclic. On rejection returns
    /// the pre-existing path `to ⇝ from` (the witness cycle minus the new
    /// edge) and leaves the graph exactly as it was.
    pub fn insert_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        tag: Option<Lit>,
    ) -> Result<Inserted, Vec<CycleEdge>> {
        #[cfg(debug_assertions)]
        let oracle_cyclic = from == to || self.dfs_path(to, from).is_some();
        let res = self.insert_edge_inner(from, to, tag);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            res.is_err(),
            oracle_cyclic,
            "incremental engine diverged from the DFS oracle on {from:?}->{to:?}"
        );
        res
    }

    fn insert_edge_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        tag: Option<Lit>,
    ) -> Result<Inserted, Vec<CycleEdge>> {
        self.stats.checks += 1;
        if from == to {
            // A self-loop is a cycle whose existing-path part is empty.
            self.stats.searched += 1;
            self.frontier.clear();
            return Err(Vec::new());
        }
        if self.force_full_dfs {
            self.stats.searched += 1;
            self.frontier.clear();
            let (path, visited) = self.dfs_search(to, from);
            self.stats.visited += visited;
            if let Some(path) = path {
                return Err(path);
            }
            self.push_edge(from, to, tag);
            self.compact_root_trail();
            return Ok(Inserted::Searched);
        }

        if self.level[from.index()] < self.level[to.index()]
            // A parallel duplicate (distinct atoms over the same event
            // pair, or an atom duplicating a fixed program-order edge)
            // cannot change reachability: the graph was acyclic with the
            // first copy, so it stays acyclic with this one.
            || self.edge_count.contains_key(&(from.0, to.0))
        {
            self.stats.accepted_o1 += 1;
            self.push_edge(from, to, tag);
            self.compact_root_trail();
            return Ok(Inserted::AcceptedO1);
        }
        self.stats.searched += 1;

        let la = self.level[from.index()];
        self.bgen += 1;
        let bgen = self.bgen;
        self.frontier.clear();
        let target;
        if tag.is_none() {
            // Fixed edges stratify eagerly: skip the backward pass and put
            // `to` strictly above `from`, so program order pre-sorts the
            // level structure before any atom is asserted. The forward
            // pass alone is complete here: every node on a to ⇝ from path
            // has level ≤ k(from) < target (levels are monotone along
            // paths), so the cascade traverses it and hits `from` if a
            // cycle exists. No frontier is lost — fixed edges are inserted
            // at encode time, where there is nothing to propagate.
            target = la + 1;
        } else {
            // ---- backward pass: within level k(from), over in-edges ------
            let delta = isqrt(self.num_edges) + 1;
            self.bstamp[from.index()] = bgen;
            self.frontier.push(from);
            self.stats.visited += 1;
            self.stack.clear();
            self.stack.push(from);
            let mut arcs = 0usize;
            let mut bounded = false;
            'backward: while let Some(u) = self.stack.pop() {
                for i in 0..self.inn[u.index()].len() {
                    if arcs >= delta {
                        bounded = true;
                        self.stack.clear();
                        break 'backward;
                    }
                    arcs += 1;
                    let InEdge { from: x, tag: etag } = self.inn[u.index()][i];
                    if self.level[x.index()] != la || self.bstamp[x.index()] == bgen {
                        continue;
                    }
                    self.bstamp[x.index()] = bgen;
                    self.bparent[x.index()] = (u, etag);
                    if x == to {
                        // Existing path to ⇝ from: the new edge closes a cycle.
                        return Err(self.backward_path(to, from));
                    }
                    self.stats.visited += 1;
                    self.frontier.push(x);
                    self.stack.push(x);
                }
            }

            target = if bounded { la + 1 } else { la };
            if target <= self.level[to.index()] {
                // Complete backward pass and k(to) == k(from): the invariant
                // already holds, and completeness rules out any path
                // to ⇝ from.
                self.push_edge(from, to, tag);
                self.compact_root_trail();
                return Ok(Inserted::Searched);
            }
        }

        // ---- level update + forward pass ---------------------------------
        let mark = self.trail.len();
        self.promote(to, target);
        self.stack.clear();
        self.stack.push(to);
        self.stats.visited += 1;
        while let Some(x) = self.stack.pop() {
            for i in 0..self.out[x.index()].len() {
                let OutEdge { to: y, tag: etag } = self.out[x.index()][i];
                if y == from || self.bstamp[y.index()] == bgen {
                    // to ⇝ x → y (⇝ from): cycle. Build the witness, then
                    // roll back this insertion's promotions so the level
                    // invariant is restored before the theory backtracks.
                    let path = self.forward_witness(from, to, x, y, etag);
                    self.unwind_to(mark);
                    return Err(path);
                }
                if self.level[y.index()] < self.level[x.index()] {
                    let lx = self.level[x.index()];
                    self.promote(y, lx);
                    self.fparent[y.index()] = (x, etag);
                    self.stack.push(y);
                    self.stats.visited += 1;
                }
            }
        }
        self.push_edge(from, to, tag);
        self.compact_root_trail();
        Ok(Inserted::Searched)
    }

    /// Witness for a cycle found by the forward pass while scanning `x→y`:
    /// `to ⇝ x` via forward parents, the scanned edge, then `y ⇝ from` via
    /// backward parents (empty when `y == from`).
    fn forward_witness(
        &self,
        from: NodeId,
        to: NodeId,
        x: NodeId,
        y: NodeId,
        etag: Option<Lit>,
    ) -> Vec<CycleEdge> {
        let mut path = Vec::new();
        let mut cur = x;
        while cur != to {
            let (pred, tag) = self.fparent[cur.index()];
            path.push(CycleEdge {
                from: pred,
                to: cur,
                tag,
            });
            cur = pred;
        }
        path.reverse();
        path.push(CycleEdge {
            from: x,
            to: y,
            tag: etag,
        });
        if y != from {
            path.extend(self.backward_path(y, from));
        }
        path
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId, tag: Option<Lit>) {
        self.out[from.index()].push(OutEdge { to, tag });
        self.inn[to.index()].push(InEdge { from, tag });
        self.num_edges += 1;
        *self.edge_count.entry((from.0, to.0)).or_insert(0) += 1;
        self.trail.push(GraphOp::Edge { from, to });
    }

    fn promote(&mut self, node: NodeId, to_level: u32) {
        let old = self.level[node.index()];
        debug_assert!(old < to_level);
        self.trail.push(GraphOp::Level { node, old });
        self.level[node.index()] = to_level;
        self.stats.promoted += 1;
    }

    /// With no open decision level every trail entry is permanent — drop it
    /// so root-level insertions (fixed program-order edges) never grow the
    /// trail.
    fn compact_root_trail(&mut self) {
        if self.marks.is_empty() {
            self.trail.clear();
        }
    }

    fn unwind_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail length checked") {
                GraphOp::Edge { from, to } => {
                    self.out[from.index()].pop();
                    self.inn[to.index()].pop();
                    self.num_edges -= 1;
                    let count = self
                        .edge_count
                        .get_mut(&(from.0, to.0))
                        .expect("undone edge was counted");
                    *count -= 1;
                    if *count == 0 {
                        self.edge_count.remove(&(from.0, to.0));
                    }
                }
                GraphOp::Level { node, old } => {
                    self.level[node.index()] = old;
                }
            }
        }
    }

    /// Opens a decision level (mirrors the theory's `new_level`).
    pub fn new_level(&mut self) {
        self.marks.push(self.trail.len());
    }

    /// Backtracks to `level`, restoring adjacency and node levels exactly.
    pub fn backtrack_to(&mut self, level: u32) {
        let target = level as usize;
        if target >= self.marks.len() {
            return;
        }
        let keep = self.marks[target];
        self.marks.truncate(target);
        self.unwind_to(keep);
    }

    /// `true` if a (possibly empty) path `from ⇝ to` exists. A `&self`
    /// query — the DFS scratch lives behind interior mutability, so
    /// certification re-checks run without a mutable theory.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        from == to || self.dfs_path(from, to).is_some()
    }

    /// Full-DFS path search `from ⇝ to` (the retained oracle). Returns the
    /// path's edges in forward order, or `None`. Does not touch `stats`.
    pub fn dfs_path(&self, from: NodeId, to: NodeId) -> Option<Vec<CycleEdge>> {
        self.dfs_search(from, to).0
    }

    fn dfs_search(&self, from: NodeId, to: NodeId) -> (Option<Vec<CycleEdge>>, u64) {
        let mut q = self.query.borrow_mut();
        let n = self.out.len();
        if q.stamp.len() < n {
            q.stamp.resize(n, 0);
            q.parent.resize(n, (NodeId(0), None));
        }
        q.gen += 1;
        let gen = q.gen;
        q.stack.clear();
        q.stack.push(from);
        q.stamp[from.index()] = gen;
        let mut visited = 1u64;
        while let Some(u) = q.stack.pop() {
            for e in &self.out[u.index()] {
                if q.stamp[e.to.index()] == gen {
                    continue;
                }
                q.stamp[e.to.index()] = gen;
                q.parent[e.to.index()] = (u, e.tag);
                visited += 1;
                if e.to == to {
                    let mut edges = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (pred, tag) = q.parent[cur.index()];
                        edges.push(CycleEdge {
                            from: pred,
                            to: cur,
                            tag,
                        });
                        cur = pred;
                    }
                    edges.reverse();
                    return (Some(edges), visited);
                }
                q.stack.push(e.to);
            }
        }
        (None, visited)
    }

    /// Checks the level invariant `k(u) ≤ k(v)` over every edge. Test/debug
    /// aid; O(V + E).
    pub fn check_level_invariant(&self) -> Result<(), String> {
        for (u, edges) in self.out.iter().enumerate() {
            for e in edges {
                if self.level[u] > self.level[e.to.index()] {
                    return Err(format!(
                        "edge {u}->{} violates level invariant ({} > {})",
                        e.to.0,
                        self.level[u],
                        self.level[e.to.index()]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Integer square root (newton), used for the backward-search arc bound
/// Δ ≈ √m.
fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = n.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize) -> (OrderGraph, Vec<NodeId>) {
        let mut g = OrderGraph::new();
        let nodes = (0..n).map(|_| g.add_node()).collect();
        (g, nodes)
    }

    #[test]
    fn isqrt_matches_floor_sqrt() {
        for n in 0..2000usize {
            let r = isqrt(n);
            assert!(r * r <= n, "isqrt({n}) = {r}");
            assert!((r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }

    #[test]
    fn accepts_forward_chain_in_o1_after_levels_settle() {
        let (mut g, n) = graph(100);
        for w in n.windows(2) {
            assert!(g.insert_edge(w[0], w[1], None).is_ok());
        }
        assert!(g.check_level_invariant().is_ok());
        // A far-forward edge respects the settled levels: O(1) accept.
        let before = g.stats.accepted_o1;
        assert_eq!(g.insert_edge(n[0], n[99], None), Ok(Inserted::AcceptedO1));
        assert_eq!(g.stats.accepted_o1, before + 1);
    }

    #[test]
    fn rejects_cycle_with_exact_witness() {
        let (mut g, n) = graph(4);
        g.insert_edge(n[0], n[1], None).unwrap();
        g.insert_edge(n[1], n[2], None).unwrap();
        g.insert_edge(n[2], n[3], None).unwrap();
        let path = g.insert_edge(n[3], n[0], None).unwrap_err();
        // Witness is the existing path head ⇝ tail: 0→1→2→3.
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].from, n[0]);
        assert_eq!(path[2].to, n[3]);
        for w in path.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        // Rejection left the graph untouched.
        assert_eq!(g.num_edges(), 3);
        assert!(g.check_level_invariant().is_ok());
        assert!(!g.reaches(n[3], n[0]));
    }

    #[test]
    fn self_loop_rejected_with_empty_witness() {
        let (mut g, n) = graph(1);
        assert_eq!(g.insert_edge(n[0], n[0], None), Err(Vec::new()));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn backtracking_restores_levels_and_edges() {
        let (mut g, n) = graph(8);
        g.new_level();
        // Pair segments first, then chain-link them: the links see in- and
        // out-edges on both endpoints, so they search, hit the Δ = √m
        // bound, and promote.
        for i in [0, 2, 4, 6] {
            g.insert_edge(n[i], n[i + 1], None).unwrap();
        }
        for i in [1, 3, 5] {
            g.insert_edge(n[i], n[i + 1], None).unwrap();
        }
        assert!(
            (0..8).any(|i| g.level_of(n[i]) > 0),
            "chain long enough to trigger promotions"
        );
        assert!(g.reaches(n[0], n[7]));
        g.backtrack_to(0);
        assert_eq!(g.num_edges(), 0);
        for i in 0..8 {
            assert_eq!(g.level_of(n[i]), 0, "level of node {i} restored");
        }
        assert!(!g.reaches(n[0], n[7]));
        // The reverse orientation is now acceptable.
        g.new_level();
        for w in n.windows(2) {
            assert!(g.insert_edge(w[1], w[0], None).is_ok());
        }
        assert!(g.check_level_invariant().is_ok());
    }

    #[test]
    fn rejected_insertion_rolls_back_forward_promotions() {
        let (mut g, n) = graph(4);
        g.new_level();
        // 1→2→3 then 0→1 promotes the tail of the chain.
        g.insert_edge(n[1], n[2], None).unwrap();
        g.insert_edge(n[2], n[3], None).unwrap();
        g.insert_edge(n[0], n[1], None).unwrap();
        let levels: Vec<u32> = (0..4).map(|i| g.level_of(n[i as usize])).collect();
        // 3→0 closes a cycle; the failed insertion must not leave stray
        // promotions behind.
        assert!(g.insert_edge(n[3], n[0], None).is_err());
        let after: Vec<u32> = (0..4).map(|i| g.level_of(n[i as usize])).collect();
        assert_eq!(levels, after);
        assert!(g.check_level_invariant().is_ok());
    }

    #[test]
    fn root_insertions_do_not_grow_trail() {
        let (mut g, n) = graph(50);
        for w in n.windows(2) {
            g.insert_edge(w[0], w[1], None).unwrap();
        }
        assert_eq!(g.trail.len(), 0, "root trail must stay empty");
        // And a later decision level still undoes exactly its own ops.
        g.new_level();
        g.insert_edge(n[0], n[10], None).unwrap();
        assert!(!g.trail.is_empty());
        g.backtrack_to(0);
        assert_eq!(g.trail.len(), 0);
        assert_eq!(g.num_edges(), 49);
    }

    #[test]
    fn frontier_members_reach_the_tail() {
        // Tagged (asserted) edges keep the diamond at level 0 — fixed
        // edges would stratify eagerly and empty the same-level frontier.
        let tag = |i: u32| Some(zpre_sat::Var::new(i).positive());
        let (mut g, n) = graph(6);
        // Diamond into node 4: backward pass from 4 collects its ancestors
        // at the same level.
        g.insert_edge(n[0], n[4], tag(0)).unwrap();
        g.insert_edge(n[1], n[4], tag(1)).unwrap();
        g.insert_edge(n[2], n[4], tag(2)).unwrap();
        // All nodes still level 0, so inserting 4→5 searches backward from 4.
        let ins = g.insert_edge(n[4], n[5], tag(3)).unwrap();
        assert_eq!(ins, Inserted::Searched);
        let frontier: Vec<NodeId> = g.frontier().to_vec();
        assert!(frontier.contains(&n[4]));
        for &u in &frontier {
            assert!(g.reaches(u, n[4]), "frontier node {u:?} must reach tail");
            // The recorded backward path is a real edge path u ⇝ 4.
            let path = g.backward_path(u, n[4]);
            let mut cur = u;
            for e in &path {
                assert_eq!(e.from, cur);
                cur = e.to;
            }
            assert_eq!(cur, n[4]);
        }
    }

    #[test]
    fn full_dfs_mode_agrees_and_counts_as_searched() {
        let (mut g, n) = graph(5);
        g.set_force_full_dfs(true);
        for w in n.windows(2) {
            assert!(g.insert_edge(w[0], w[1], None).is_ok());
        }
        assert!(g.insert_edge(n[4], n[0], None).is_err());
        assert_eq!(g.stats.accepted_o1, 0);
        assert_eq!(g.stats.searched, g.stats.checks);
    }

    #[test]
    fn stats_split_invariant() {
        let (mut g, n) = graph(30);
        for i in 0..29 {
            g.insert_edge(n[i], n[i + 1], None).unwrap();
        }
        let _ = g.insert_edge(n[20], n[5], None);
        let _ = g.insert_edge(n[3], n[25], None);
        assert_eq!(g.stats.accepted_o1 + g.stats.searched, g.stats.checks);
    }

    #[test]
    fn random_insertions_match_dfs_oracle() {
        // Deterministic LCG; the debug_assertions oracle inside insert_edge
        // re-checks every step as well.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _round in 0..20 {
            let (mut g, n) = graph(24);
            g.new_level();
            for _ in 0..120 {
                let a = n[rng() % n.len()];
                let b = n[rng() % n.len()];
                let would_cycle = a == b || g.reaches(b, a);
                match g.insert_edge(a, b, None) {
                    Ok(_) => assert!(!would_cycle),
                    Err(path) => {
                        assert!(would_cycle);
                        // Witness chains b ⇝ a over existing edges.
                        if a != b {
                            let mut cur = b;
                            for e in &path {
                                assert_eq!(e.from, cur);
                                cur = e.to;
                            }
                            assert_eq!(cur, a);
                        }
                    }
                }
                g.check_level_invariant().unwrap();
            }
        }
    }
}
